//! Two-phase dense simplex.
//!
//! Solves `min cᵀx` subject to `aᵢᵀx ⋈ᵢ bᵢ` (⋈ᵢ ∈ {≤, =, ≥}) and `x ≥ 0`.
//! Implementation notes:
//!
//! * rows are normalized to `b ≥ 0`; slack, surplus and artificial variables
//!   are appended as needed;
//! * phase 1 minimizes the sum of artificials to find a basic feasible
//!   point, phase 2 optimizes the real objective;
//! * pivoting uses Bland's rule (smallest eligible index), which is slow but
//!   cannot cycle — the decoding LPs here are small and degenerate, so
//!   termination beats speed;
//! * a single absolute tolerance `EPS = 1e-9` classifies zeros; the decoding
//!   experiments round solutions to {0,1} anyway.

/// Relation of one constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx = b`
    Eq,
    /// `aᵀx ≥ b`
    Ge,
}

/// One constraint `coeffs·x ⋈ rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Coefficient vector (dense, length = number of variables).
    pub coeffs: Vec<f64>,
    /// The relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<f64>, relation: Relation, rhs: f64) -> Self {
        Self { coeffs, relation, rhs }
    }
}

/// A linear program `min cᵀx  s.t.  constraints, x ≥ 0`.
#[derive(Clone, Debug, Default)]
pub struct LinearProgram {
    /// Objective coefficients (minimized).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// Result of [`LinearProgram::solve`].
#[derive(Clone, Debug)]
pub enum SimplexOutcome {
    /// Optimal solution found.
    Optimal {
        /// Optimal variable assignment (structural variables only).
        x: Vec<f64>,
        /// Objective value at `x`.
        objective: f64,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Creates a program with `n` variables and zero objective.
    pub fn feasibility(n: usize) -> Self {
        Self { objective: vec![0.0; n], constraints: Vec::new() }
    }

    /// Adds a constraint; panics if arity differs from the objective.
    pub fn push(&mut self, c: Constraint) -> &mut Self {
        assert_eq!(c.coeffs.len(), self.objective.len(), "constraint arity mismatch");
        self.constraints.push(c);
        self
    }

    /// Solves the program.
    pub fn solve(&self) -> SimplexOutcome {
        let n = self.objective.len();
        let m = self.constraints.len();
        // Normalize rows to b >= 0 and count auxiliary variables.
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
        for c in &self.constraints {
            if c.rhs < 0.0 {
                let flipped: Vec<f64> = c.coeffs.iter().map(|v| -v).collect();
                let rel = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                rows.push((flipped, rel, -c.rhs));
            } else {
                rows.push((c.coeffs.clone(), c.relation, c.rhs));
            }
        }
        let num_slack =
            rows.iter().filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge)).count();
        let num_artificial =
            rows.iter().filter(|(_, r, _)| matches!(r, Relation::Eq | Relation::Ge)).count();
        let total = n + num_slack + num_artificial;
        // Tableau: m rows of [coeffs | slack | artificial | rhs].
        let width = total + 1;
        let mut tab = vec![0.0f64; m * width];
        let mut basis = vec![0usize; m];
        let mut slack_idx = n;
        let mut art_idx = n + num_slack;
        let mut artificials = Vec::new();
        for (i, (coeffs, rel, rhs)) in rows.iter().enumerate() {
            let row = &mut tab[i * width..(i + 1) * width];
            row[..n].copy_from_slice(coeffs);
            row[total] = *rhs;
            match rel {
                Relation::Le => {
                    row[slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    row[slack_idx] = -1.0;
                    slack_idx += 1;
                    row[art_idx] = 1.0;
                    basis[i] = art_idx;
                    artificials.push(art_idx);
                    art_idx += 1;
                }
                Relation::Eq => {
                    row[art_idx] = 1.0;
                    basis[i] = art_idx;
                    artificials.push(art_idx);
                    art_idx += 1;
                }
            }
        }

        // ---- Phase 1: minimize sum of artificials.
        if !artificials.is_empty() {
            let mut cost1 = vec![0.0f64; total];
            for &a in &artificials {
                cost1[a] = 1.0;
            }
            match Self::optimize(&mut tab, &mut basis, m, total, &cost1) {
                Phase::Unbounded => unreachable!("phase-1 objective is bounded below by 0"),
                Phase::Optimal(obj) => {
                    if obj > EPS {
                        return SimplexOutcome::Infeasible;
                    }
                }
            }
            // Drive any artificial variables still in the basis out (they sit
            // at value 0; pivot on any nonzero non-artificial column).
            for (i, basis_i) in basis.iter_mut().enumerate().take(m) {
                if artificials.contains(basis_i) {
                    let row_start = i * width;
                    if let Some(j) = (0..n + num_slack).find(|&j| tab[row_start + j].abs() > EPS) {
                        Self::pivot(&mut tab, m, total, i, j);
                        *basis_i = j;
                    }
                    // If no pivot exists the row is all-zero: redundant, keep.
                }
            }
        }

        // ---- Phase 2: minimize the real objective (artificials pinned out).
        let mut cost2 = vec![0.0f64; total];
        cost2[..n].copy_from_slice(&self.objective);
        // Forbid artificial columns from re-entering by costing them heavily
        // is unsound; instead we simply exclude them from pricing below via
        // the allowed-column bound.
        let allowed = n + num_slack;
        match Self::optimize_bounded(&mut tab, &mut basis, m, total, &cost2, allowed) {
            Phase::Unbounded => SimplexOutcome::Unbounded,
            Phase::Optimal(obj) => {
                let mut x = vec![0.0; n];
                for i in 0..m {
                    if basis[i] < n {
                        x[basis[i]] = tab[i * width + total];
                    }
                }
                SimplexOutcome::Optimal { x, objective: obj }
            }
        }
    }

    fn optimize(
        tab: &mut [f64],
        basis: &mut [usize],
        m: usize,
        total: usize,
        cost: &[f64],
    ) -> Phase {
        Self::optimize_bounded(tab, basis, m, total, cost, total)
    }

    /// Simplex iterations restricted to entering columns `< allowed`.
    fn optimize_bounded(
        tab: &mut [f64],
        basis: &mut [usize],
        m: usize,
        total: usize,
        cost: &[f64],
        allowed: usize,
    ) -> Phase {
        let width = total + 1;
        loop {
            // Reduced costs: r_j = c_j - c_B^T B^{-1} A_j, computed directly
            // from the tableau (columns are already B^{-1}A).
            let mut entering = None;
            for j in 0..allowed {
                if basis.contains(&j) {
                    continue;
                }
                let mut r = cost[j];
                for i in 0..m {
                    r -= cost[basis[i]] * tab[i * width + j];
                }
                if r < -EPS {
                    entering = Some(j); // Bland: first (smallest) index
                    break;
                }
            }
            let Some(j) = entering else {
                // Optimal: compute objective.
                let mut obj = 0.0;
                for i in 0..m {
                    obj += cost[basis[i]] * tab[i * width + total];
                }
                return Phase::Optimal(obj);
            };
            // Ratio test (Bland: smallest basis index on ties).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = tab[i * width + j];
                if a > EPS {
                    let ratio = tab[i * width + total] / a;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(i) = leave else {
                return Phase::Unbounded;
            };
            Self::pivot(tab, m, total, i, j);
            basis[i] = j;
        }
    }

    fn pivot(tab: &mut [f64], m: usize, total: usize, pr: usize, pc: usize) {
        let width = total + 1;
        let piv = tab[pr * width + pc];
        debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
        for j in 0..width {
            tab[pr * width + j] /= piv;
        }
        for i in 0..m {
            if i == pr {
                continue;
            }
            let factor = tab[i * width + pc];
            if factor == 0.0 {
                continue;
            }
            for j in 0..width {
                let v = tab[pr * width + j];
                tab[i * width + j] -= factor * v;
            }
        }
    }
}

enum Phase {
    Optimal(f64),
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_optimal(outcome: &SimplexOutcome, expect_x: &[f64], expect_obj: f64) {
        match outcome {
            SimplexOutcome::Optimal { x, objective } => {
                assert!((objective - expect_obj).abs() < 1e-7, "objective {objective}");
                for (a, b) in x.iter().zip(expect_x) {
                    assert!((a - b).abs() < 1e-7, "x = {x:?}");
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of negative)
        let mut lp = LinearProgram { objective: vec![-3.0, -5.0], constraints: vec![] };
        lp.push(Constraint::new(vec![1.0, 0.0], Relation::Le, 4.0));
        lp.push(Constraint::new(vec![0.0, 2.0], Relation::Le, 12.0));
        lp.push(Constraint::new(vec![3.0, 2.0], Relation::Le, 18.0));
        assert_optimal(&lp.solve(), &[2.0, 6.0], -36.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 2, x - y = 0  -> x = y = 1.
        let mut lp = LinearProgram { objective: vec![1.0, 1.0], constraints: vec![] };
        lp.push(Constraint::new(vec![1.0, 1.0], Relation::Eq, 2.0));
        lp.push(Constraint::new(vec![1.0, -1.0], Relation::Eq, 0.0));
        assert_optimal(&lp.solve(), &[1.0, 1.0], 2.0);
    }

    #[test]
    fn ge_constraints_and_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 -> x = 4, y = 0? cost 8 vs
        // x=1,y=3 cost 11; optimum x=4.
        let mut lp = LinearProgram { objective: vec![2.0, 3.0], constraints: vec![] };
        lp.push(Constraint::new(vec![1.0, 1.0], Relation::Ge, 4.0));
        lp.push(Constraint::new(vec![1.0, 0.0], Relation::Ge, 1.0));
        assert_optimal(&lp.solve(), &[4.0, 0.0], 8.0);
    }

    #[test]
    fn detects_infeasibility() {
        // x <= 1 and x >= 2.
        let mut lp = LinearProgram { objective: vec![1.0], constraints: vec![] };
        lp.push(Constraint::new(vec![1.0], Relation::Le, 1.0));
        lp.push(Constraint::new(vec![1.0], Relation::Ge, 2.0));
        assert!(matches!(lp.solve(), SimplexOutcome::Infeasible));
    }

    #[test]
    fn detects_unboundedness() {
        // min -x s.t. x >= 0 (no upper bound).
        let mut lp = LinearProgram { objective: vec![-1.0], constraints: vec![] };
        lp.push(Constraint::new(vec![1.0], Relation::Ge, 0.0));
        assert!(matches!(lp.solve(), SimplexOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalization() {
        // -x <= -3  (i.e. x >= 3), min x -> 3.
        let mut lp = LinearProgram { objective: vec![1.0], constraints: vec![] };
        lp.push(Constraint::new(vec![-1.0], Relation::Le, -3.0));
        assert_optimal(&lp.solve(), &[3.0], 3.0);
    }

    #[test]
    fn degenerate_program_terminates() {
        // Multiple redundant constraints through the optimum (degeneracy).
        let mut lp = LinearProgram { objective: vec![-1.0, -1.0], constraints: vec![] };
        lp.push(Constraint::new(vec![1.0, 0.0], Relation::Le, 1.0));
        lp.push(Constraint::new(vec![0.0, 1.0], Relation::Le, 1.0));
        lp.push(Constraint::new(vec![1.0, 1.0], Relation::Le, 2.0));
        lp.push(Constraint::new(vec![2.0, 2.0], Relation::Le, 4.0));
        assert_optimal(&lp.solve(), &[1.0, 1.0], -2.0);
    }

    #[test]
    fn feasibility_program() {
        let mut lp = LinearProgram::feasibility(2);
        lp.push(Constraint::new(vec![1.0, 1.0], Relation::Eq, 1.0));
        match lp.solve() {
            SimplexOutcome::Optimal { x, .. } => {
                assert!((x[0] + x[1] - 1.0).abs() < 1e-9);
                assert!(x.iter().all(|&v| v >= -1e-9));
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn larger_random_lp_against_bruteforce_vertices() {
        // min cᵀx over a box with one coupling row; optimum sits at a vertex
        // we can enumerate.
        let mut lp = LinearProgram { objective: vec![1.0, -2.0, 0.5], constraints: vec![] };
        for j in 0..3 {
            let mut e = vec![0.0; 3];
            e[j] = 1.0;
            lp.push(Constraint::new(e, Relation::Le, 1.0));
        }
        lp.push(Constraint::new(vec![1.0, 1.0, 1.0], Relation::Le, 2.0));
        // Optimum: y=1 (coef -2), z=0 (coef .5>0), x=0 -> obj -2.
        assert_optimal(&lp.solve(), &[0.0, 1.0, 0.0], -2.0);
    }
}
