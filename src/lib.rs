//! # itemset-sketches
//!
//! A from-scratch reproduction of *Space Lower Bounds for Itemset Frequency
//! Sketches* (Liberty, Mitzenmacher, Thaler, Ullman — PODS 2016,
//! arXiv:1407.3740).
//!
//! The paper studies sketches `(S, Q)` that summarize a binary database
//! `D ∈ ({0,1}^d)^n` so that the frequency of any `k`-itemset can be
//! answered approximately from the summary alone, and proves that uniform
//! row sampling is an essentially space-optimal sketch. This workspace makes
//! all of it executable:
//!
//! * the four sketch contracts and the three naive algorithms
//!   ([`core`]: `ReleaseDb`, `ReleaseAnswers*`, `Subsample`, median
//!   boosting, Theorem 12–17 bound formulas);
//! * the binary-database substrate ([`database`]);
//! * every lower-bound construction as an encoder/decoder pair
//!   ([`lowerbounds`]), with the substrates they need built in-repo:
//!   dense linear algebra ([`linalg`]), Reed–Solomon/concatenated codes
//!   ([`codes`]), and a simplex LP solver ([`solver`]);
//! * the mining and streaming consumers the paper positions itself against
//!   ([`mining`], [`streaming`]);
//! * the streaming-ingestion layer (DESIGN.md §9): every sketch build is a
//!   single-pass fold (`core::streaming`), partial builds merge
//!   bit-identically to one-shot builds, and `Database::append_rows`
//!   extends the cached columnar views in place so an ingest-then-query
//!   loop never re-transposes;
//! * the snapshot layer (DESIGN.md §10): every sketch encodes to a
//!   versioned, checksummed wire format (`core::snapshot`), decodes back
//!   `==`-identically, and reports the encoded length as its
//!   `size_bits()` — the paper's `|S|`, measured rather than claimed.
//!
//! ## Quickstart
//!
//! ```
//! use itemset_sketches::prelude::*;
//!
//! let mut rng = Rng64::seeded(7);
//! let db = generators::uniform(10_000, 32, 0.2, &mut rng);
//! let params = SketchParams::new(2, 0.05, 0.05);
//! let sketch = Subsample::build(&db, &params, Guarantee::ForEachEstimator, &mut rng);
//! let t = Itemset::new(vec![3, 17]);
//! let err = (sketch.estimate(&t) - db.frequency(&t)).abs();
//! assert!(err <= params.epsilon);
//! assert!(sketch.size_bits() < ifs_database::serialize::size_bits(&db));
//! ```
//!
//! See `examples/` for end-to-end scenarios and EXPERIMENTS.md for the
//! reproduction of every claim in the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ifs_codes as codes;
pub use ifs_core as core;
pub use ifs_database as database;
pub use ifs_linalg as linalg;
pub use ifs_lowerbounds as lowerbounds;
pub use ifs_mining as mining;
pub use ifs_serve as serve;
pub use ifs_solver as solver;
pub use ifs_store as store;
pub use ifs_streaming as streaming;
pub use ifs_util as util;

/// The items most programs need, importable with one `use`.
pub mod prelude {
    pub use ifs_core::{
        boosting::MedianBoost, DecodeError, EstimatorAsIndicator, FrequencyEstimator,
        FrequencyIndicator, Guarantee, MergeError, MergeableSketch, Parallel,
        ReleaseAnswersEstimator, ReleaseAnswersIndicator, ReleaseDb, ReleaseDbBuilder, Sketch,
        SketchParams, Snapshot, StreamingBuild, Subsample, SubsampleBuilder, SubsampleParams,
    };
    pub use ifs_database::{generators, ColumnStore, Database, Itemset, ShardedColumnStore};
    pub use ifs_store::{LogOp, SketchLog, StoreError};
    pub use ifs_util::Rng64;
}
