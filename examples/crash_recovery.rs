//! Crash, recover, serve: the durable sketch log survives a torn write
//! and a server booted from the recovered file answers exactly what the
//! surviving records say (DESIGN.md §14).
//!
//! The scenario is the one the store was built for. An ingestion tier
//! appends sketch frames to an append-only log — a `ReleaseDb` merge run
//! arriving shard by shard, a finished `Subsample`, an answers store —
//! and the process dies mid-append, leaving a half-written record on
//! disk. This example:
//!
//! 1. writes the log and "crashes" it by truncating the file inside the
//!    final record's bytes;
//! 2. reopens it — recovery truncates the torn tail and reports exactly
//!    what it cut, and a strict scan of the recovered file is clean;
//! 3. boots a `SketchServer` from the materialized log (merge runs fold,
//!    later `Put`s shadow earlier ones) and asserts the served answers
//!    are bit-identical to sketches rebuilt from the survivors directly;
//! 4. compacts the log to one `Put` per live id and migrates any v1
//!    `ReleaseDb` frames to the v2 run-length layout, asserting both
//!    rewrites are invisible to every query;
//! 5. shows the safety edge: a file that is *not* a log is refused with
//!    a typed error, never truncated.
//!
//! Run with: `cargo run --release --example crash_recovery`

use itemset_sketches::prelude::*;
use itemset_sketches::serve::{QueryMode, Request, Response, ServeConfig, SketchServer};
use itemset_sketches::store::materialize;

const ROWS: usize = 2_000;
const DIMS: usize = 48;
const SHARDS: usize = 4;
const EPSILON: f64 = 0.05;
const SEED: u64 = 0xC4A5;

const RELEASE_ID: u64 = 0;
const SAMPLE_ID: u64 = 1;

fn main() {
    let dir = std::env::temp_dir();
    let log_path = dir.join(format!("ifs-crash-recovery-{}.log", std::process::id()));
    let mut rng = Rng64::seeded(SEED);
    let db = generators::uniform(ROWS, DIMS, 0.1, &mut rng);

    // ---- 1. Ingest: a merge run of ReleaseDb shards plus two puts. ----
    let mut log = SketchLog::create(&log_path).expect("create log");
    let chunk = ROWS.div_ceil(SHARDS);
    for start in (0..ROWS).step_by(chunk) {
        let rows: Vec<Vec<u32>> = (start..(start + chunk).min(ROWS))
            .map(|r| db.row_itemset(r).items().to_vec())
            .collect();
        let shard = ReleaseDb::build(&Database::from_rows(DIMS, &rows), EPSILON);
        // The first v1 frame makes the later migration pass do real work.
        let frame = if start == 0 { shard.snapshot_bytes_v1() } else { shard.snapshot_bytes() };
        log.append(LogOp::Merge, RELEASE_ID, &frame).expect("append shard");
    }
    let sample = Subsample::with_sample_count_seeded(&db, 64, EPSILON, SEED ^ 1);
    log.append(LogOp::Put, SAMPLE_ID, &sample.snapshot_bytes()).expect("append sample");
    println!(
        "ingested {} records ({} bytes): a {SHARDS}-shard merge run and a Put",
        log.record_count(),
        log.len_bytes()
    );

    // ---- 2. Crash: tear the final record, then recover. ----
    let survivors = log.records().expect("scan");
    drop(log);
    let bytes = std::fs::read(&log_path).expect("read log");
    let torn_at = survivors.last().expect("records").offset as usize + 7;
    std::fs::write(&log_path, &bytes[..torn_at]).expect("tear the tail");
    println!("crashed mid-append: file cut to {torn_at} of {} bytes", bytes.len());

    let (recovered, report) = SketchLog::open(&log_path).expect("recovery must open");
    println!(
        "recovered: kept {} records / {} bytes, truncated {} bytes ({})",
        report.records,
        report.valid_bytes,
        report.truncated_bytes,
        report.reason.as_deref().unwrap_or("clean"),
    );
    assert_eq!(report.records + 1, survivors.len() as u64, "exactly the torn record was lost");
    recovered.records().expect("recovered file scans strictly clean");

    // ---- 3. Boot a server from the log; verify against a rebuild. ----
    let live = recovered.materialize().expect("materialize");
    let prefix = materialize(&survivors[..report.records as usize]).expect("prefix");
    assert_eq!(live, prefix, "materialization is exactly the surviving prefix");
    let server = SketchServer::new(ServeConfig::default());
    for (id, frame) in &live {
        server.load_frame(*id, 0, frame).expect("admit");
    }
    // The merge run folded the *surviving* shards; rebuild that sketch
    // directly from the same frames and compare served answers.
    let mut oracle: Option<ReleaseDb> = None;
    for rec in &survivors[..report.records as usize] {
        if rec.id == RELEASE_ID {
            let shard = ReleaseDb::from_snapshot(&rec.frame).expect("decode shard");
            match &mut oracle {
                None => oracle = Some(shard),
                Some(acc) => acc.merge(shard).expect("fold"),
            }
        }
    }
    let oracle = oracle.expect("the merge run survived");
    let queries: Vec<Itemset> = (0..256)
        .map(|_| {
            let k = rng.below(3) + 1;
            Itemset::new(rng.distinct_sorted(DIMS, k).iter().map(|&i| i as u32).collect())
        })
        .collect();
    let served = query(&server, RELEASE_ID, &queries);
    for (q, &got) in queries.iter().zip(&served) {
        assert_eq!(got.to_bits(), oracle.estimate(q).to_bits(), "{q:?}");
    }
    println!("served {} queries from the recovered log, bit-identical to the fold", served.len());

    // ---- 4. Compact, then migrate; both invisible to queries. ----
    let compact_path = dir.join(format!("ifs-crash-recovery-{}.compact", std::process::id()));
    let (compacted, cstats) = recovered.compact_into(&compact_path).expect("compact");
    println!(
        "compacted: {} -> {} records, {} -> {} bytes",
        cstats.records_in, cstats.records_out, cstats.bytes_in, cstats.bytes_out
    );
    assert_eq!(compacted.materialize().expect("m"), live, "compaction is invisible");
    let migrate_path = dir.join(format!("ifs-crash-recovery-{}.migrated", std::process::id()));
    let (migrated, mstats) = recovered.migrate_into(&migrate_path).expect("migrate");
    println!(
        "migrated: {} of {} frames rewritten to current versions, {} -> {} bytes",
        mstats.rewritten, mstats.records, mstats.bytes_in, mstats.bytes_out
    );
    assert_eq!(mstats.rewritten, 1, "exactly the v1 shard frame was stale");
    let a = ReleaseDb::from_snapshot(&live[&RELEASE_ID]).expect("decode");
    let b =
        ReleaseDb::from_snapshot(&migrated.materialize().expect("m")[&RELEASE_ID]).expect("decode");
    assert_eq!(a, b, "migration is invisible");

    // ---- 5. A foreign file is refused, never truncated. ----
    let foreign = dir.join(format!("ifs-crash-recovery-{}.notalog", std::process::id()));
    std::fs::write(&foreign, b"these are not the bytes you are looking for").expect("write");
    match SketchLog::open(&foreign) {
        Err(StoreError::NotALog { .. }) => {
            let untouched = std::fs::read(&foreign).expect("reread");
            assert_eq!(untouched.len(), 43, "refusal leaves the file byte-identical");
            println!("foreign file refused with a typed error, file untouched");
        }
        other => panic!("expected NotALog, got {other:?}"),
    }

    for p in [&log_path, &compact_path, &migrate_path, &foreign] {
        let _ = std::fs::remove_file(p);
    }
    println!("crash_recovery: all identities held");
}

/// One estimate batch through the server's byte-level entry point.
fn query(server: &SketchServer, id: u64, queries: &[Itemset]) -> Vec<f64> {
    let bytes = server.handle(
        &Request::Query { id, mode: QueryMode::Estimate, queries: queries.to_vec() }.to_bytes(),
    );
    match Response::from_bytes(&bytes).expect("decodable response") {
        Response::Estimates(v) => v,
        Response::Error(e) => panic!("{e}"),
        other => panic!("unexpected response {other:?}"),
    }
}
