//! Market-basket analysis on a sketch — the scenario the paper's
//! introduction opens with: "given shopping cart data, identify bundles of
//! items that are frequently bought together", without keeping the data.
//!
//! Run with: `cargo run --release --example market_basket`

use itemset_sketches::mining::{self, oracle, rules, summary};
use itemset_sketches::prelude::*;

fn main() {
    let mut rng = Rng64::seeded(42);

    // Synthetic transactions: Zipf-popular catalogue + two real bundles.
    let spec = generators::MarketBasketSpec {
        transactions: 30_000,
        items: 40,
        zipf_exponent: 1.1,
        mean_basket: 5.0,
        bundles: vec![
            (vec![30, 31, 32], 0.20), // e.g. pasta + sauce + parmesan
            (vec![35, 36], 0.15),     // e.g. chips + salsa
        ],
    };
    let db = generators::market_basket(&spec, &mut rng);
    println!("transactions: {} over {} items, density {:.3}", db.rows(), db.dims(), db.density());

    // Keep only a For-All-Estimator sample; pretend the raw data is gone.
    let params = SketchParams::new(3, 0.02, 0.05);
    let sketch = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
    println!(
        "sketch: {} sampled rows, {} bits ({:.1}% of the database)",
        sketch.rows(),
        sketch.size_bits(),
        100.0 * sketch.size_bits() as f64
            / itemset_sketches::database::serialize::size_bits(&db) as f64
    );

    // Mine frequent bundles from the sketch alone ([MT96]: mine at θ − ε).
    let theta = 0.12;
    let mined = oracle::mine_with_estimator(&sketch, db.dims(), theta - params.epsilon, 3);
    let exact = mining::apriori::mine(&db, theta, 3);
    let (recall, precision) = oracle::recall_precision(&mined, &exact);
    println!(
        "\nmining at θ = {theta}: {} itemsets from sketch, {} exact (recall {:.3}, precision {:.3})",
        mined.len(),
        exact.len(),
        recall,
        precision
    );

    // Condensed representation: maximal bundles only.
    let maximal = summary::maximal(&mined);
    println!("\nmaximal frequent bundles (from sketch):");
    let mut sorted = maximal.clone();
    sorted.sort_by(|a, b| b.frequency.partial_cmp(&a.frequency).unwrap());
    for m in sorted.iter().take(8) {
        println!("  {:<14} est. frequency {:.3}", m.itemset.to_string(), m.frequency);
    }

    // Association rules with estimated confidences.
    let derived = rules::derive(&mined, 0.6);
    println!("\ntop rules (confidence ≥ 0.6):");
    for r in derived.iter().take(6) {
        println!(
            "  {} => {}   conf {:.3}  lift {:.2}",
            r.antecedent, r.consequent, r.confidence, r.lift
        );
    }

    // Ground truth check on the planted bundles.
    println!("\nplanted bundle frequencies (truth vs sketch):");
    for bundle in [Itemset::new(vec![30, 31, 32]), Itemset::new(vec![35, 36])] {
        println!(
            "  {:<14} truth {:.3}  sketch {:.3}",
            bundle.to_string(),
            db.frequency(&bundle),
            sketch.estimate(&bundle)
        );
    }
}
