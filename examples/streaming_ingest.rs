//! Streaming ingestion end-to-end: an appendable database serving queries
//! while rows arrive, and sketches built as mergeable folds.
//!
//! The ROADMAP's continuously-arriving-traffic scenario (DESIGN.md §9),
//! one step past `sharded_engine`: the ingest tier appends row batches
//! through `Database::append_rows` — which extends the cached columnar
//! views *in place* instead of invalidating them — while the query tier
//! answers a batched log between appends. Sketches ride the same stream:
//! a `Subsample` is folded shard-by-shard and merged, bit-identical to the
//! one-shot build; a Count-Min row fold merges counter-wise across shards.
//!
//! Run with: `cargo run --release --example streaming_ingest`

use itemset_sketches::core::streaming::fold_database;
use itemset_sketches::prelude::*;
use itemset_sketches::streaming::{CountMinFold, CountMinFoldParams};
use std::time::Instant;

const TOTAL_ROWS: usize = 30_000;
const DIMS: usize = 64;
const BATCH_ROWS: usize = 1_000;
const QUERIES_PER_BATCH: usize = 50;
const SAMPLE_ROWS: usize = 2_000;
const SEED: u64 = 0x1265;

fn main() {
    let mut rng = Rng64::seeded(SEED);
    let hot = Itemset::new(vec![3, 17]);

    // The arriving stream: row batches with a planted hot pair.
    let batches: Vec<Vec<Itemset>> = (0..TOTAL_ROWS / BATCH_ROWS)
        .map(|_| {
            (0..BATCH_ROWS)
                .map(|_| {
                    let mut row: Vec<u32> =
                        (0..DIMS as u32).filter(|_| rng.bernoulli(0.08)).collect();
                    if rng.bernoulli(0.25) {
                        row.extend_from_slice(hot.items());
                    }
                    row.into_iter().collect::<Itemset>()
                })
                .collect()
        })
        .collect();
    let queries: Vec<Itemset> = (0..QUERIES_PER_BATCH)
        .map(|q| match q % 10 {
            0 => hot.clone(),
            _ => (0..1 + q % 3).map(|_| rng.below(DIMS) as u32).collect(),
        })
        .collect();

    // Ingest tier: append batches, serve the query log between appends.
    // The warm columnar view is maintained in place — no re-transpose.
    let mut live = Database::zeros(0, DIMS);
    let _ = live.columns();
    let t = Instant::now();
    let mut answered = 0usize;
    for batch in &batches {
        live.append_rows(batch);
        answered += live.frequencies(&queries).len();
    }
    let ingest_time = t.elapsed();
    assert!(live.has_column_cache(), "appends must keep the columnar view warm");
    println!(
        "ingest+query: {TOTAL_ROWS} rows in {}-row batches, {answered} queries answered \
         in {ingest_time:?} ({:.0} rows/s, {:.0} queries/s)",
        BATCH_ROWS,
        TOTAL_ROWS as f64 / ingest_time.as_secs_f64(),
        answered as f64 / ingest_time.as_secs_f64(),
    );

    // The maintained view answers exactly like a cold rebuild.
    let rebuilt = Database::from_matrix(live.matrix().clone());
    assert_eq!(live.frequencies(&queries), rebuilt.frequencies(&queries));
    println!("maintained columnar view == cold rebuild: verified on {QUERIES_PER_BATCH} queries");

    // Sketch tier: a Subsample folded per shard and merged, bit-identical
    // to the one-shot build from the same seed.
    let params = SubsampleParams { sample_rows: SAMPLE_ROWS, epsilon: 0.05 };
    let one_shot = Subsample::with_sample_count_seeded(&live, SAMPLE_ROWS, 0.05, SEED);
    let mut merged = SubsampleBuilder::begin(DIMS, SEED, &params);
    let mut offset = 0u64;
    for batch in &batches {
        let mut shard = SubsampleBuilder::begin_at(DIMS, SEED, &params, offset);
        shard.observe_rows(batch.iter());
        offset += shard.rows_seen();
        merged.merge(shard).expect("adjacent shard partials merge");
    }
    let merged = merged.finish();
    assert_eq!(merged.sample(), one_shot.sample(), "merged sample must equal one-shot sample");
    let threaded = Subsample::with_sample_count_sharded(&live, SAMPLE_ROWS, 0.05, SEED, 4);
    assert_eq!(threaded.sample(), one_shot.sample());
    println!(
        "Subsample ({SAMPLE_ROWS} rows): one-shot == per-batch merged == sharded@4 threads, \
         bit for bit"
    );
    let truth = live.frequency(&hot);
    let estimate = merged.estimate(&hot);
    println!("planted pair {hot}: truth {truth:.4}, sketch estimate {estimate:.4}");
    assert!((estimate - truth).abs() <= 0.05, "estimate drifted past ε");

    // Heavy-hitter tier: Count-Min folded per batch, merged counter-wise.
    let cm_params = CountMinFoldParams { k: 2, width: 512, depth: 4, conservative: false };
    let mut cm_parts: Vec<CountMinFold> = batches
        .iter()
        .map(|batch| {
            let mut fold = CountMinFold::begin(DIMS, SEED, &cm_params);
            fold.observe_rows(batch.iter());
            fold
        })
        .collect();
    let mut cm = cm_parts.remove(0);
    for part in cm_parts {
        cm.merge(part).expect("same-shape folds merge");
    }
    let cm = cm.finish();
    let mut cm_one = CountMinFold::begin(DIMS, SEED, &cm_params);
    for batch in &batches {
        cm_one.observe_rows(batch.iter());
    }
    assert_eq!(cm, cm_one.finish(), "merged Count-Min must equal the one-pass fold");
    println!(
        "Count-Min row fold: {} shards merged counter-wise == one pass; f(hot pair) ~ {:.4}",
        batches.len(),
        cm.estimate(&hot)
    );

    // ReleaseDb rides the same contracts: folding the stream is the
    // identity sketch itself.
    let release = fold_database::<ReleaseDbBuilder>(&live, 0, &0.1);
    assert_eq!(release.database(), &live);
    println!(
        "ReleaseDb fold == stored database ({} rows, {} bits)",
        release.database().rows(),
        release.size_bits()
    );
}
