//! High-throughput query serving: a large itemset-query log answered from a
//! SUBSAMPLE sketch on the batched columnar engine.
//!
//! The ROADMAP's "millions of users" scenario: the database stays at the
//! data owner, a small SUBSAMPLE sketch is shipped to the query tier, and
//! the query tier answers an arriving log of itemset queries. This example
//! compares the legacy per-query row-major scan against the shared-tid-set
//! batched path ([`FrequencyEstimator::estimate_batch`], DESIGN.md §7) and
//! checks the two produce bit-identical answers.
//!
//! Run with: `cargo run --release --example high_throughput_queries`

use itemset_sketches::prelude::*;
use std::time::Instant;

const ROWS: usize = 100_000;
const DIMS: usize = 128;
const SAMPLE_ROWS: usize = 20_000;
const LOG_LEN: usize = 10_000;
const EPSILON: f64 = 0.02;

fn main() {
    let mut rng = Rng64::seeded(0x9E7);

    // Data owner's side: a planted database and a sketch worth shipping.
    let hot = Itemset::new(vec![3, 40, 77]);
    let warm = Itemset::new(vec![12, 90]);
    let db = generators::planted(
        ROWS,
        DIMS,
        0.05,
        &[
            generators::Plant { itemset: hot.clone(), frequency: 0.22 },
            generators::Plant { itemset: warm.clone(), frequency: 0.09 },
        ],
        &mut rng,
    );
    let sketch = Subsample::with_sample_count(&db, SAMPLE_ROWS, EPSILON, &mut rng);
    let full_bits = itemset_sketches::database::serialize::size_bits(&db);
    println!(
        "database {ROWS}x{DIMS} ({full_bits} bits); sketch {} rows ({} bits, {:.1}% of full)",
        sketch.rows(),
        sketch.size_bits(),
        100.0 * sketch.size_bits() as f64 / full_bits as f64
    );

    // Query tier's side: an arriving log of mixed-cardinality itemsets, the
    // planted bundles sprinkled in.
    let queries: Vec<Itemset> = (0..LOG_LEN)
        .map(|q| match q % 100 {
            0 => hot.clone(),
            50 => warm.clone(),
            _ => (0..1 + q % 4).map(|_| rng.below(DIMS) as u32).collect(),
        })
        .collect();

    // Legacy path: per query, rebuild the packed mask and scan every sampled
    // row (what `estimate` cost before the columnar engine).
    let t0 = Instant::now();
    let scalar: Vec<f64> = queries
        .iter()
        .map(|t| {
            let mask = sketch.sample().mask_of(t);
            sketch.sample().support_mask(&mask) as f64 / sketch.rows() as f64
        })
        .collect();
    let scalar_time = t0.elapsed();

    // Columnar path: one shared transpose, one scratch buffer, whole log in
    // a single batched call.
    let t1 = Instant::now();
    let batched = sketch.estimate_batch(&queries);
    let batched_time = t1.elapsed();

    assert_eq!(batched, scalar, "batched answers must be bit-identical to scalar answers");

    let scalar_qps = LOG_LEN as f64 / scalar_time.as_secs_f64();
    let batched_qps = LOG_LEN as f64 / batched_time.as_secs_f64();
    println!("\n{:<26} {:>12} {:>14}", "path", "time", "queries/s");
    println!("{:<26} {:>12?} {:>14.0}", "scalar row-major", scalar_time, scalar_qps);
    println!("{:<26} {:>12?} {:>14.0}", "batched columnar", batched_time, batched_qps);
    println!("speedup: {:.1}x (answers bit-identical)", batched_qps / scalar_qps);

    // The answers are still ε-accurate: check the planted bundles.
    println!("\n{:<12} {:>9} {:>10} {:>8}", "itemset", "truth", "estimate", "error");
    for t in [&hot, &warm] {
        let truth = db.frequency(t);
        let est = batched[queries.iter().position(|q| q == t).unwrap()];
        println!("{:<12} {:>9.4} {:>10.4} {:>8.4}", t.to_string(), truth, est, (est - truth).abs());
        assert!((est - truth).abs() <= EPSILON + 0.01, "estimate drifted past ε");
    }
}
