//! The Theorem 15 reconstruction attack, end to end.
//!
//! Hides an error-corrected message inside a `v × 2d` database, then
//! recovers it through nothing but threshold (indicator) queries to a
//! sketch. A valid sketch *must* leak the whole message — that is the
//! lower bound — while a byte-budgeted sketch loses it, showing the Ω(dv)
//! wall is real.
//!
//! Run with: `cargo run --release --example reconstruction_attack`

use itemset_sketches::lowerbounds::thm15::Thm15Instance;
use itemset_sketches::prelude::*;

fn main() {
    let mut rng = Rng64::seeded(1407);
    let (d, k) = (64, 3);
    let eps = 1.0 / 50.0;

    let capacity = Thm15Instance::message_capacity(d, k).expect("feasible parameters");
    let message: Vec<bool> = (0..capacity).map(|_| rng.bernoulli(0.5)).collect();
    let inst = Thm15Instance::encode(d, k, &message);
    println!(
        "instance: d = {d}, k = {k}, v = {} rows, database {} x {} ({} payload bits hidden)",
        inst.v(),
        inst.database().rows(),
        inst.database().dims(),
        capacity
    );
    println!("attack issues {} indicator queries\n", inst.query_count());

    // 1. A valid (exact) sketch: the attack must extract everything.
    let exact = ReleaseDb::build(inst.database(), eps);
    let (acc, decoded) = inst.attack(&exact, eps, &mut rng);
    println!(
        "exact sketch      : codeword accuracy {:.3}, message recovered: {}",
        acc,
        decoded.as_deref() == Some(&message[..])
    );

    // 2. Budgeted sketches: subsample with decreasing row budgets. Below the
    //    information bound the message must die.
    println!("\n{:>12} {:>12} {:>10} {:>10}", "sample rows", "sketch bits", "cw acc", "message?");
    for rows in [64usize, 32, 16, 8, 4, 2, 1] {
        let sketch = Subsample::with_sample_count(inst.database(), rows, eps, &mut rng);
        let (acc, decoded) = inst.attack(&sketch, eps, &mut rng);
        println!(
            "{:>12} {:>12} {:>10.3} {:>10}",
            rows,
            sketch.size_bits(),
            acc,
            if decoded.as_deref() == Some(&message[..]) { "yes" } else { "lost" }
        );
    }

    println!(
        "\nreading: with all {} rows sampled the sketch answers every threshold query and \
         the {}-bit message survives; starved samples cross below the Ω(dv) = Ω({}) bit \
         bound and recovery collapses — the space lower bound in action.",
        inst.database().rows(),
        capacity,
        d * inst.v()
    );
}
