//! Streaming heavy hitters vs row sampling for frequent itemsets (§1.2).
//!
//! The paper notes that no streaming algorithm is known to beat uniform row
//! sampling for itemset frequencies — and its lower bounds explain why.
//! This example gives both the same space budget and compares recall /
//! precision on planted frequent pairs.
//!
//! Run with: `cargo run --release --example streaming_comparison`

use itemset_sketches::prelude::*;
use itemset_sketches::streaming::{adapter, LossyCounting, MisraGries, SpaceSaving, StreamCounter};
use itemset_sketches::util::combin;

fn main() {
    let mut rng = Rng64::seeded(2002);
    let (n, d, k) = (20_000usize, 24usize, 2usize);

    // Planted frequent pairs over sparse background.
    let plants = [
        (Itemset::new(vec![0, 1]), 0.20),
        (Itemset::new(vec![2, 3]), 0.15),
        (Itemset::new(vec![4, 5]), 0.10),
    ];
    let specs: Vec<generators::Plant> = plants
        .iter()
        .map(|(t, f)| generators::Plant { itemset: t.clone(), frequency: *f })
        .collect();
    let db = generators::planted(n, d, 0.03, &specs, &mut rng);
    let theta = 0.08;

    // Ground truth: all θ-frequent pairs.
    let truth: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|t| db.frequency(t) >= theta)
        .collect();
    println!(
        "{} pairs are {theta}-frequent (of C({d},{k}) = {})",
        truth.len(),
        combin::binomial_u64(d as u64, k as u64)
    );

    // Space budget: a For-Each-Indicator subsample.
    let params = SketchParams::new(k, theta, 0.05);
    let sample = Subsample::build(&db, &params, Guarantee::ForEachIndicator, &mut rng);
    let budget_bits = sample.size_bits();
    println!("space budget: {} bits (= the Lemma 9 subsample)\n", budget_bits);

    let id_bits = adapter::itemset_id_bits(d, k);
    let counters = (budget_bits / (id_bits + 64)).max(1) as usize;

    let report = |name: &str, hits: Vec<Itemset>, bits: u64| {
        let hit_set: std::collections::HashSet<_> = hits.iter().cloned().collect();
        let truth_set: std::collections::HashSet<_> = truth.iter().cloned().collect();
        let inter = hit_set.intersection(&truth_set).count() as f64;
        let recall = if truth.is_empty() { 1.0 } else { inter / truth.len() as f64 };
        let precision = if hits.is_empty() { 1.0 } else { inter / hits.len() as f64 };
        println!(
            "{:<16} {:>10} bits   recall {:>5.3}   precision {:>5.3}",
            name, bits, recall, precision
        );
    };

    // Row sampling: declare frequent via the indicator.
    let sample_hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|t| sample.is_frequent(t))
        .collect();
    report("SUBSAMPLE", sample_hits, sample.size_bits());

    // Misra-Gries over the pair stream.
    let mut mg = MisraGries::new(counters, id_bits);
    adapter::feed_rows(&db, k, &mut mg, usize::MAX);
    let pair_stream_len = mg.stream_len();
    let mg_hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|t| adapter::itemset_frequency(&mg, t, n) >= 0.75 * theta)
        .collect();
    report("MISRA-GRIES", mg_hits, mg.size_bits());

    // SpaceSaving.
    let mut ss = SpaceSaving::new(counters / 2, id_bits);
    adapter::feed_rows(&db, k, &mut ss, usize::MAX);
    let ss_hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|t| adapter::itemset_frequency(&ss, t, n) >= 0.75 * theta)
        .collect();
    report("SPACESAVING", ss_hits, ss.size_bits());

    // Lossy counting (Manku-Motwani): ε relative to the pair stream.
    let mut lc = LossyCounting::new(0.25 * theta * n as f64 / pair_stream_len as f64, id_bits);
    adapter::feed_rows(&db, k, &mut lc, usize::MAX);
    let lc_hits: Vec<Itemset> = combin::Combinations::new(d as u32, k as u32)
        .map(Itemset::new)
        .filter(|t| adapter::itemset_frequency(&lc, t, n) >= 0.75 * theta)
        .collect();
    report("LOSSY-COUNTING", lc_hits, lc.size_bits());

    println!(
        "\nnote: the itemset stream has {} arrivals from {} rows (C(|row|,{k}) per row) — \
         the enumeration blow-up that makes heavy-hitter approaches pay for what sampling \
         gets free; the paper's lower bounds say nothing can do asymptotically better than \
         the subsample line anyway.",
        pair_stream_len, n
    );
}
