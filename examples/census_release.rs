//! Efficient data release (§1.1.2): a curator publishes a small itemset
//! sketch instead of full marginal contingency tables.
//!
//! Categorical demographic attributes are decomposed into binary ones
//! (footnote 1 of the paper); any k-way marginal cell is then a conjunction
//! of binary attributes, i.e. an itemset frequency query.
//!
//! Run with: `cargo run --release --example census_release`

use itemset_sketches::database::generators::{categorical_predicate, categorical_to_binary};
use itemset_sketches::prelude::*;

fn main() {
    let mut rng = Rng64::seeded(1790);

    // Synthetic census microdata: (age-band, education, region, employed).
    let cardinalities = [8u32, 4, 16, 2];
    let n = 400_000;
    let rows: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            let age = rng.below(8) as u32;
            let edu = ((age as usize).min(3).max(rng.below(4))) as u32; // older skews educated
            let region = rng.below(16) as u32;
            // Employment correlates with education.
            let employed = u32::from(rng.bernoulli(0.4 + 0.15 * edu as f64));
            vec![age, edu, region, employed]
        })
        .collect();
    let db = categorical_to_binary(&rows, &cardinalities);
    println!(
        "microdata: {} records, {} categorical attributes -> {} binary attributes",
        n,
        cardinalities.len(),
        db.dims()
    );

    // Release: a For-All-Estimator sketch answering every conjunction of up
    // to 6 binary predicates — enough for any 2-way marginal cell here and
    // for the 3-way (age, edu, employed) cell below.
    let params = SketchParams::new(6, 0.01, 0.05);
    let sketch = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
    let full = itemset_sketches::database::serialize::size_bits(&db);
    println!(
        "released sketch: {} rows, {} bits ({:.1}% of microdata)",
        sketch.rows(),
        sketch.size_bits(),
        100.0 * sketch.size_bits() as f64 / full as f64
    );

    // A user reconstructs the (education × employed) marginal table.
    println!("\nmarginal table: education x employed (cell = fraction of records)");
    println!("{:<12} {:>18} {:>18}", "education", "unemployed", "employed");
    let mut worst = 0.0f64;
    for edu in 0..4u32 {
        let mut cells = Vec::new();
        for emp in 0..2u32 {
            let query = categorical_predicate(&cardinalities, 1, edu)
                .union(&categorical_predicate(&cardinalities, 3, emp));
            let est = sketch.estimate(&query);
            let truth = db.frequency(&query);
            worst = worst.max((est - truth).abs());
            cells.push(format!("{est:.4} ({truth:.4})"));
        }
        println!("{:<12} {:>18} {:>18}", format!("level {edu}"), cells[0], cells[1]);
    }
    println!("(cells show: estimate (truth); worst error {worst:.4}, ε = {})", params.epsilon);

    // Three-way marginal query: P(age=5, edu=3, employed=1).
    let q = categorical_predicate(&cardinalities, 0, 5)
        .union(&categorical_predicate(&cardinalities, 1, 3))
        .union(&categorical_predicate(&cardinalities, 3, 1));
    println!(
        "\n3-way cell (age=5, edu=3, employed): estimate {:.4}, truth {:.4}, |query| = {} items",
        sketch.estimate(&q),
        db.frequency(&q),
        q.len()
    );

    // Why not release the marginal tables themselves? Count the cells.
    let pairs = cardinalities.len() * (cardinalities.len() - 1) / 2;
    let cells: u64 = {
        let mut total = 0u64;
        for i in 0..cardinalities.len() {
            for j in (i + 1)..cardinalities.len() {
                total += (cardinalities[i] * cardinalities[j]) as u64;
            }
        }
        total
    };
    println!(
        "\nall {pairs} pairwise marginal tables hold {cells} cells; the sketch answers them \
         all (and every marginal expressible in ≤ 6 binary predicates) from {} bits",
        sketch.size_bits()
    );
}
