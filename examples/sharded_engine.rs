//! Serving a high-QPS itemset-query log across cores.
//!
//! The ROADMAP's production scenario, one step past
//! `high_throughput_queries`: the query tier no longer just batches its log
//! onto shared tid-sets — it partitions the database rows into word-aligned
//! shards ([`ShardedColumnStore`], DESIGN.md §8), builds the shards on all
//! cores, and fans each arriving batch out to worker threads. Every answer
//! is required to be bit-identical to the serial engine; threads change
//! wall-clock, never bits. The same knob drives a shipped `Subsample`
//! sketch via the [`Parallel`] trait.
//!
//! Run with: `cargo run --release --example sharded_engine`

use itemset_sketches::prelude::*;
use std::time::Instant;

const ROWS: usize = 100_000;
const DIMS: usize = 128;
const SAMPLE_ROWS: usize = 20_000;
const LOG_LEN: usize = 10_000;
const EPSILON: f64 = 0.02;

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut rng = Rng64::seeded(0x5AA0);

    // Data owner's side: a planted database, and a SUBSAMPLE sketch small
    // enough to ship to the query tier.
    let hot = Itemset::new(vec![5, 33, 71]);
    let db = generators::planted(
        ROWS,
        DIMS,
        0.05,
        &[generators::Plant { itemset: hot.clone(), frequency: 0.2 }],
        &mut rng,
    );

    // Query tier's side: an arriving log of mixed-cardinality itemsets.
    let queries: Vec<Itemset> = (0..LOG_LEN)
        .map(|q| match q % 100 {
            0 => hot.clone(),
            _ => (0..1 + q % 4).map(|_| rng.below(DIMS) as u32).collect(),
        })
        .collect();

    // Shard build: all cores transpose row slices concurrently.
    let t = Instant::now();
    let sharded = ShardedColumnStore::build(db.matrix(), cores);
    let build_time = t.elapsed();
    println!(
        "sharded build: {ROWS}x{DIMS} -> {} shards of {} rows in {build_time:?} ({cores} cores)",
        sharded.shard_count(),
        sharded.shard_rows(),
    );

    // Serial reference answers (and the determinism yardstick).
    let t = Instant::now();
    let serial = db.frequencies(&queries);
    let serial_time = t.elapsed();

    println!("\n{:<22} {:>12} {:>14} {:>10}", "engine", "time", "queries/s", "identical");
    let serial_qps = LOG_LEN as f64 / serial_time.as_secs_f64();
    println!("{:<22} {:>12?} {:>14.0} {:>10}", "serial columnar", serial_time, serial_qps, "-");
    for threads in [1usize, 2, cores.max(2), 2 * cores] {
        let t = Instant::now();
        let answers = sharded.frequency_batch(&queries, threads);
        let elapsed = t.elapsed();
        assert_eq!(answers, serial, "sharded answers must be bit-identical to serial answers");
        println!(
            "{:<22} {:>12?} {:>14.0} {:>10}",
            format!("sharded @{threads} threads"),
            elapsed,
            LOG_LEN as f64 / elapsed.as_secs_f64(),
            "yes"
        );
    }

    // The shipped-sketch tier: the same knob through the Parallel trait.
    let sketch = Subsample::with_sample_count(&db, SAMPLE_ROWS, EPSILON, &mut rng);
    let serial_est = sketch.estimate_batch(&queries);
    let threaded = sketch.clone().with_threads(cores);
    let t = Instant::now();
    let est = threaded.estimate_batch(&queries);
    let sketch_time = t.elapsed();
    assert_eq!(est, serial_est, "threaded sketch answers must be bit-identical");
    println!(
        "\nSubsample ({SAMPLE_ROWS} rows) @{cores} threads: {LOG_LEN} queries in {sketch_time:?} \
         ({:.0} queries/s), answers bit-identical to serial",
        LOG_LEN as f64 / sketch_time.as_secs_f64()
    );

    // Accuracy survives all of it: the planted bundle is still within ε.
    let truth = db.frequency(&hot);
    let estimate = est[0];
    println!("planted bundle {hot}: truth {truth:.4}, sketch estimate {estimate:.4}");
    assert!((estimate - truth).abs() <= EPSILON + 0.01, "estimate drifted past ε");
}
