//! Quickstart: build a database, sketch it four ways, query itemsets.
//!
//! Run with: `cargo run --release --example quickstart`

use itemset_sketches::prelude::*;

fn main() {
    let mut rng = Rng64::seeded(2016);

    // A database with 50k rows over 24 attributes and two planted itemsets.
    let hot = Itemset::new(vec![1, 5, 9]);
    let warm = Itemset::new(vec![2, 3, 7]);
    let db = generators::planted(
        50_000,
        24,
        0.05,
        &[
            generators::Plant { itemset: hot.clone(), frequency: 0.30 },
            generators::Plant { itemset: warm.clone(), frequency: 0.12 },
        ],
        &mut rng,
    );
    let full_bits = itemset_sketches::database::serialize::size_bits(&db);
    println!("database: {} rows x {} attributes ({} bits)", db.rows(), db.dims(), full_bits);

    let params = SketchParams::new(3, 0.05, 0.05);

    // The three naive algorithms of the paper (§2).
    let release_db = ReleaseDb::build(&db, params.epsilon);
    let answers = ReleaseAnswersEstimator::build(&db, 3, params.epsilon);
    let sample = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);

    println!("\n{:<22} {:>14} {:>12}", "sketch", "size (bits)", "vs full db");
    for (name, bits) in [
        ("RELEASE-DB", release_db.size_bits()),
        ("RELEASE-ANSWERS", answers.size_bits()),
        ("SUBSAMPLE", sample.size_bits()),
    ] {
        println!("{:<22} {:>14} {:>11.2}x", name, bits, bits as f64 / full_bits as f64);
    }

    // Query both planted itemsets and a cold one through every sketch.
    let cold = Itemset::new(vec![20, 21, 22]);
    println!(
        "\n{:<12} {:>9} {:>12} {:>12} {:>12}",
        "itemset", "truth", "release-db", "answers", "subsample"
    );
    for t in [&hot, &warm, &cold] {
        println!(
            "{:<12} {:>9.4} {:>12.4} {:>12.4} {:>12.4}",
            t.to_string(),
            db.frequency(t),
            release_db.estimate(t),
            answers.estimate(t),
            sample.estimate(t),
        );
    }

    // Indicator queries: is the itemset ε-frequent?
    println!("\nindicator @ ε = {}:", params.epsilon);
    for t in [&hot, &warm, &cold] {
        println!(
            "  {:<10} frequent? {}",
            t.to_string(),
            if sample.is_frequent(t) { "yes" } else { "no" }
        );
    }

    // The worst estimation error over all 3-itemsets for the subsample —
    // should be within ε (the For-All guarantee).
    let mut worst: f64 = 0.0;
    for comb in itemset_sketches::util::combin::Combinations::new(24, 3) {
        let t = Itemset::new(comb);
        worst = worst.max((sample.estimate(&t) - db.frequency(&t)).abs());
    }
    println!(
        "\nworst error over all C(24,3) = 2024 itemsets: {:.4} (ε = {})",
        worst, params.epsilon
    );
}
