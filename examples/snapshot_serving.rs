//! Offline build, online serve: sketches cross a process boundary as
//! versioned snapshots, and queries cross back over the serving protocol
//! (DESIGN.md §10–§11).
//!
//! The ROADMAP's target deployment splits in two: an offline tier with the
//! full database builds sketches (sharded across cores, §8/§9), and a
//! serving tier that never sees a row of raw data answers user queries
//! from sketch bytes alone. This example runs that split end to end over a
//! real socket: build → `snapshot_bytes()` → `ifs_serve::SketchServer` on
//! a loopback listener → `Load`/`Query` frames from a client — and asserts
//! the served answers are bit-identical to querying the never-serialized
//! originals. Along the way it prints each sketch's `size_bits()`, which
//! since the snapshot layer is exactly the byte length the serving tier
//! just received: the paper's `|S|`, measured.
//!
//! It also exercises the tier's refusal edges: a Count-Min frame is
//! *admissible bytes but not a servable sketch* (counter partials ship to
//! ingestion mergers, not query servers), a version-skewed frame refuses
//! before its body is touched, and both come back as typed errors over the
//! wire, never panics.
//!
//! Run with: `cargo run --release --example snapshot_serving`

use itemset_sketches::prelude::*;
use itemset_sketches::serve::{
    net, QueryMode, Request, Response, ServeConfig, ServeError, SketchServer,
};
use itemset_sketches::streaming::{CountMinSketch, StreamCounter};
use std::net::TcpListener;
use std::time::Instant;

const TOTAL_ROWS: usize = 40_000;
const DIMS: usize = 64;
const SAMPLE_ROWS: usize = 3_000;
const QUERY_LOG: usize = 2_000;
const SEED: u64 = 0x0FF1CE;

const SAMPLE_ID: u64 = 0;
const ANSWERS_ID: u64 = 1;

fn main() {
    // ---- Offline tier: full data, sharded builds (§8/§9). -------------
    let mut rng = Rng64::seeded(SEED);
    let hot = Itemset::new(vec![5, 21]);
    let db = {
        let mut d = Database::zeros(0, DIMS);
        let rows: Vec<Itemset> = (0..TOTAL_ROWS)
            .map(|_| {
                let mut row: Vec<u32> = (0..DIMS as u32).filter(|_| rng.bernoulli(0.1)).collect();
                if rng.bernoulli(0.3) {
                    row.extend_from_slice(hot.items());
                }
                row.into_iter().collect::<Itemset>()
            })
            .collect();
        d.append_rows(&rows);
        d
    };

    let t = Instant::now();
    let sample = Subsample::with_sample_count_sharded(&db, SAMPLE_ROWS, 0.05, SEED, 4);
    let answers = ReleaseAnswersIndicator::build(&db, 2, 0.1);
    // Item-level heavy hitters ride the same wire format: a Count-Min over
    // every item arrival in the row stream.
    let mut cm = CountMinSketch::<u32>::new(1024, 4, false, SEED);
    for r in 0..db.rows() {
        for &item in db.row_itemset(r).items() {
            cm.update(item);
        }
    }
    println!(
        "offline tier: built 3 sketches from {} rows x {} dims in {:?}",
        db.rows(),
        db.dims(),
        t.elapsed()
    );

    // ---- The wire: snapshots are all that crosses. ---------------------
    let sample_bytes = sample.snapshot_bytes();
    let answers_bytes = answers.snapshot_bytes();
    let cm_bytes = cm.snapshot_bytes();
    let full_bits = itemset_sketches::database::serialize::size_bits(&db);
    for (name, sketch_bits, bytes) in [
        ("SUBSAMPLE", sample.size_bits(), &sample_bytes),
        ("RELEASE-ANSWERS", answers.size_bits(), &answers_bytes),
        ("COUNT-MIN", StreamCounter::size_bits(&cm), &cm_bytes),
    ] {
        assert_eq!(sketch_bits, bytes.len() as u64 * 8, "{name}: size_bits must be measured");
        println!(
            "  {name:<16} {:>8} bytes on the wire ({sketch_bits} bits = {:.2}% of the full \
             database)",
            bytes.len(),
            100.0 * sketch_bits as f64 / full_bits as f64
        );
    }

    // Reference answers from the never-serialized originals.
    let queries: Vec<Itemset> = (0..QUERY_LOG)
        .map(|q| match q % 7 {
            0 => hot.clone(),
            _ => (0..1 + q % 3).map(|_| rng.below(DIMS) as u32).collect(),
        })
        .collect();
    let reference_est = sample.with_threads(2).estimate_batch(&queries);
    let pair_queries: Vec<Itemset> = queries.iter().filter(|t| t.len() == 2).cloned().collect();
    let reference_ind: Vec<bool> = pair_queries.iter().map(|t| answers.is_frequent(t)).collect();
    let hot_item = hot.items()[0];
    let reference_cm = cm.estimate(&hot_item);

    // ---- Serving tier: a server process that only ever sees bytes. ------
    let t = Instant::now();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = SketchServer::new(ServeConfig::default());
    let (served_est, served_ind) = std::thread::scope(|scope| {
        scope.spawn(|| net::serve_listener(&server, &listener, Some(1)).expect("serve"));
        let mut client = net::Client::connect(&addr, 5_000).expect("connect");
        let mut call =
            |req: Request| client.call(&req).expect("transport").expect("response decodes");

        // Load the two *frequency* sketches; the serving tier admits them
        // by kind through the snapshot registry.
        for (id, frame) in [(SAMPLE_ID, &sample_bytes), (ANSWERS_ID, &answers_bytes)] {
            match call(Request::Load { id, threads: 2, frame: frame.clone() }) {
                Response::Loaded { size_bits, .. } => {
                    assert_eq!(size_bits, frame.len() as u64 * 8)
                }
                other => panic!("load {id}: unexpected response {other:?}"),
            }
        }
        // The Count-Min frame is valid bytes of an *unservable* kind:
        // counter partials ship to ingestion mergers, not query servers.
        match call(Request::Load { id: 9, threads: 1, frame: cm_bytes.clone() }) {
            Response::Error(ServeError::UnservableKind { kind }) => {
                println!("serving tier refused the Count-Min frame (kind {kind}) as unservable")
            }
            other => panic!("expected an unservable-kind refusal, got {other:?}"),
        }

        let est = match call(Request::Query {
            id: SAMPLE_ID,
            mode: QueryMode::Estimate,
            queries: queries.clone(),
        }) {
            Response::Estimates(v) => v,
            other => panic!("expected estimates, got {other:?}"),
        };
        let ind = match call(Request::Query {
            id: ANSWERS_ID,
            mode: QueryMode::Indicator,
            queries: pair_queries.clone(),
        }) {
            Response::Indicators(v) => v,
            other => panic!("expected indicators, got {other:?}"),
        };
        (est, ind)
    });
    // Count-Min answers stay on the direct snapshot path (its tier is the
    // ingestion merger, which decodes frames in-process).
    let served_cm = CountMinSketch::<u32>::from_snapshot(&cm_bytes)
        .expect("decode count-min")
        .estimate(&hot_item);
    println!(
        "serving tier: loaded 2 snapshots and answered {} queries over TCP in {:?}",
        queries.len() + pair_queries.len(),
        t.elapsed()
    );

    // The split is an execution strategy, never an approximation.
    assert_eq!(served_est, reference_est, "served estimates diverged from the build tier");
    assert_eq!(served_ind, reference_ind, "served indicators diverged from the build tier");
    assert_eq!(served_cm, reference_cm, "served Count-Min estimate diverged");
    println!(
        "identity: {} served answers bit-identical to the build tier; f(hot pair) ~ {:.4}",
        served_est.len() + served_ind.len() + 1,
        served_est[0]
    );

    // Version skew and corruption refuse with typed errors, not panics —
    // what a serving tier's rollout safety depends on.
    let mut skewed = sample_bytes.clone();
    skewed[6] = 0xFF;
    let refusal = Subsample::from_snapshot(&skewed).expect_err("future version must refuse");
    println!("version skew refused as expected: {refusal}");
    let offline = SketchServer::new(ServeConfig::default());
    let wire_refusal =
        Response::from_bytes(&offline.handle(&skewed)).expect("refusals are valid responses");
    match wire_refusal {
        Response::Error(e) => println!("and over the wire it is still typed: {e}"),
        other => panic!("expected a typed wire refusal, got {other:?}"),
    }
}
