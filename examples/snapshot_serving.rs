//! Offline build, online serve: sketches cross a process boundary as
//! versioned snapshots (DESIGN.md §10).
//!
//! The ROADMAP's target deployment splits in two: an offline tier with the
//! full database builds sketches (sharded across cores, §8/§9), and a
//! serving tier that never sees a row of raw data answers user queries
//! from sketch bytes alone. This example runs that split end to end inside
//! one process: build → `snapshot_bytes()` → move *only the bytes* into a
//! serving thread → `from_snapshot()` → answer a query log — and asserts
//! the served answers are bit-identical to querying the never-serialized
//! originals. Along the way it prints each sketch's `size_bits()`, which
//! since the snapshot layer is exactly the byte length the serving tier
//! just received: the paper's `|S|`, measured.
//!
//! Run with: `cargo run --release --example snapshot_serving`

use itemset_sketches::prelude::*;
use itemset_sketches::streaming::{CountMinSketch, StreamCounter};
use std::time::Instant;

const TOTAL_ROWS: usize = 40_000;
const DIMS: usize = 64;
const SAMPLE_ROWS: usize = 3_000;
const QUERY_LOG: usize = 2_000;
const SEED: u64 = 0x0FF1CE;

fn main() {
    // ---- Offline tier: full data, sharded builds (§8/§9). -------------
    let mut rng = Rng64::seeded(SEED);
    let hot = Itemset::new(vec![5, 21]);
    let db = {
        let mut d = Database::zeros(0, DIMS);
        let rows: Vec<Itemset> = (0..TOTAL_ROWS)
            .map(|_| {
                let mut row: Vec<u32> = (0..DIMS as u32).filter(|_| rng.bernoulli(0.1)).collect();
                if rng.bernoulli(0.3) {
                    row.extend_from_slice(hot.items());
                }
                row.into_iter().collect::<Itemset>()
            })
            .collect();
        d.append_rows(&rows);
        d
    };

    let t = Instant::now();
    let sample = Subsample::with_sample_count_sharded(&db, SAMPLE_ROWS, 0.05, SEED, 4);
    let answers = ReleaseAnswersIndicator::build(&db, 2, 0.1);
    // Item-level heavy hitters ride the same wire: a Count-Min over every
    // item arrival in the row stream.
    let mut cm = CountMinSketch::<u32>::new(1024, 4, false, SEED);
    for r in 0..db.rows() {
        for &item in db.row_itemset(r).items() {
            cm.update(item);
        }
    }
    println!(
        "offline tier: built 3 sketches from {} rows x {} dims in {:?}",
        db.rows(),
        db.dims(),
        t.elapsed()
    );

    // ---- The wire: snapshots are all that crosses. ---------------------
    let sample_bytes = sample.snapshot_bytes();
    let answers_bytes = answers.snapshot_bytes();
    let cm_bytes = cm.snapshot_bytes();
    let full_bits = itemset_sketches::database::serialize::size_bits(&db);
    for (name, sketch_bits, bytes) in [
        ("SUBSAMPLE", sample.size_bits(), &sample_bytes),
        ("RELEASE-ANSWERS", answers.size_bits(), &answers_bytes),
        ("COUNT-MIN", StreamCounter::size_bits(&cm), &cm_bytes),
    ] {
        assert_eq!(sketch_bits, bytes.len() as u64 * 8, "{name}: size_bits must be measured");
        println!(
            "  {name:<16} {:>8} bytes on the wire ({sketch_bits} bits = {:.2}% of the full \
             database)",
            bytes.len(),
            100.0 * sketch_bits as f64 / full_bits as f64
        );
    }

    // Reference answers from the never-serialized originals.
    let queries: Vec<Itemset> = (0..QUERY_LOG)
        .map(|q| match q % 7 {
            0 => hot.clone(),
            _ => (0..1 + q % 3).map(|_| rng.below(DIMS) as u32).collect(),
        })
        .collect();
    let reference_est = sample.estimate_batch(&queries);
    let pair_queries: Vec<Itemset> = queries.iter().filter(|t| t.len() == 2).cloned().collect();
    let reference_ind: Vec<bool> = pair_queries.iter().map(|t| answers.is_frequent(t)).collect();
    let hot_item = hot.items()[0];
    let reference_cm = cm.estimate(&hot_item);

    // ---- Serving tier: a thread that only ever sees bytes. -------------
    let t = Instant::now();
    let (served_est, served_ind, served_cm) = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let sample = Subsample::from_snapshot(&sample_bytes).expect("decode subsample");
                let answers =
                    ReleaseAnswersIndicator::from_snapshot(&answers_bytes).expect("decode answers");
                let cm = CountMinSketch::<u32>::from_snapshot(&cm_bytes).expect("decode count-min");
                let est = sample.with_threads(2).estimate_batch(&queries);
                let ind: Vec<bool> = pair_queries.iter().map(|t| answers.is_frequent(t)).collect();
                (est, ind, cm.estimate(&hot_item))
            })
            .join()
            .expect("serving thread")
    });
    println!(
        "serving tier: decoded 3 snapshots and answered {} queries in {:?}",
        queries.len() + pair_queries.len() + 1,
        t.elapsed()
    );

    // The split is an execution strategy, never an approximation.
    assert_eq!(served_est, reference_est, "served estimates diverged from the build tier");
    assert_eq!(served_ind, reference_ind, "served indicators diverged from the build tier");
    assert_eq!(served_cm, reference_cm, "served Count-Min estimate diverged");
    println!(
        "identity: {} served answers bit-identical to the build tier; f(hot pair) ~ {:.4}",
        served_est.len() + served_ind.len() + 1,
        served_est[0]
    );

    // Version skew and corruption refuse with typed errors, not panics —
    // what a serving tier's rollout safety depends on.
    let mut skewed = sample_bytes.clone();
    skewed[6] = 0xFF;
    let refusal = Subsample::from_snapshot(&skewed).expect_err("future version must refuse");
    println!("version skew refused as expected: {refusal}");
}
