//! Integration: every sketch implementation meets its Definition 1–4
//! contract on randomized databases.

use itemset_sketches::prelude::*;
use itemset_sketches::util::combin;

fn all_itemsets(d: usize, k: usize) -> impl Iterator<Item = Itemset> {
    combin::Combinations::new(d as u32, k as u32).map(Itemset::new)
}

#[test]
fn release_db_is_exact_for_all_contracts() {
    let mut rng = Rng64::seeded(201);
    let db = generators::uniform(500, 10, 0.3, &mut rng);
    let eps = 0.1;
    let sketch = ReleaseDb::build(&db, eps);
    for t in all_itemsets(10, 2) {
        let truth = db.frequency(&t);
        assert_eq!(sketch.estimate(&t), truth);
        if truth > eps {
            assert!(sketch.is_frequent(&t));
        }
        if truth < eps / 2.0 {
            assert!(!sketch.is_frequent(&t));
        }
    }
}

#[test]
fn release_answers_meets_forall_estimator_contract() {
    let mut rng = Rng64::seeded(202);
    for trial in 0..3 {
        let db = generators::uniform(300 + 100 * trial, 9, 0.4, &mut rng);
        let eps = 0.06;
        let sketch = ReleaseAnswersEstimator::build(&db, 3, eps);
        for t in all_itemsets(9, 3) {
            let err = (sketch.estimate(&t) - db.frequency(&t)).abs();
            assert!(err <= eps, "trial {trial}: {t} err {err}");
        }
    }
}

#[test]
fn release_answers_meets_forall_indicator_contract() {
    let mut rng = Rng64::seeded(203);
    let db = generators::uniform(400, 10, 0.35, &mut rng);
    let eps = 0.15;
    let sketch = ReleaseAnswersIndicator::build(&db, 2, eps);
    for t in all_itemsets(10, 2) {
        let truth = db.frequency(&t);
        if truth > eps {
            assert!(sketch.is_frequent(&t), "{t} has f={truth} > ε but answered 0");
        }
        if truth < eps / 2.0 {
            assert!(!sketch.is_frequent(&t), "{t} has f={truth} < ε/2 but answered 1");
        }
    }
}

#[test]
fn subsample_meets_forall_estimator_contract_whp() {
    // δ = 0.05 over 10 independent sketch draws: all succeeding has
    // probability ≥ (1 − δ)^10 ≈ 0.6, so allow one failure.
    let mut rng = Rng64::seeded(204);
    let db = generators::uniform(30_000, 12, 0.25, &mut rng);
    let params = SketchParams::new(2, 0.05, 0.05);
    let mut failures = 0;
    for _ in 0..10 {
        let sketch = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
        let bad = all_itemsets(12, 2)
            .any(|t| (sketch.estimate(&t) - db.frequency(&t)).abs() > params.epsilon);
        if bad {
            failures += 1;
        }
    }
    assert!(failures <= 1, "{failures}/10 sketch draws violated the for-all guarantee");
}

#[test]
fn subsample_foreach_indicator_contract_per_itemset() {
    let mut rng = Rng64::seeded(205);
    let hot = Itemset::new(vec![0, 1]);
    let cold = Itemset::new(vec![8, 9]);
    let db = generators::planted(
        20_000,
        10,
        0.0,
        &[
            generators::Plant { itemset: hot.clone(), frequency: 0.2 },
            generators::Plant { itemset: cold.clone(), frequency: 0.02 },
        ],
        &mut rng,
    );
    let params = SketchParams::new(2, 0.08, 0.05);
    let mut hot_wrong = 0;
    let mut cold_wrong = 0;
    let trials = 40;
    for _ in 0..trials {
        let sketch = Subsample::build(&db, &params, Guarantee::ForEachIndicator, &mut rng);
        if !sketch.is_frequent(&hot) {
            hot_wrong += 1;
        }
        if sketch.is_frequent(&cold) {
            cold_wrong += 1;
        }
    }
    // Each failure probability must be ≈ δ = 0.05; allow generous slack.
    assert!(hot_wrong <= 4, "hot itemset misclassified {hot_wrong}/{trials}");
    assert!(cold_wrong <= 4, "cold itemset misclassified {cold_wrong}/{trials}");
}

#[test]
fn estimator_as_indicator_adapter_contract() {
    let mut rng = Rng64::seeded(206);
    let db = generators::uniform(20_000, 10, 0.2, &mut rng);
    // Estimator with error ε/4 thresholded at 3ε/4 satisfies the indicator
    // contract (Definition 1) — check on a fresh draw.
    let eps = 0.1;
    let params = SketchParams::new(2, eps / 4.0, 0.02);
    let est = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
    let ind = EstimatorAsIndicator::new(est, eps);
    for t in all_itemsets(10, 2) {
        let truth = db.frequency(&t);
        if truth > eps {
            assert!(ind.is_frequent(&t), "{t}: f={truth}");
        }
        if truth < eps / 2.0 {
            assert!(!ind.is_frequent(&t), "{t}: f={truth}");
        }
    }
}

#[test]
fn median_boost_upgrades_foreach_to_forall() {
    let mut rng = Rng64::seeded(207);
    let db = generators::uniform(20_000, 10, 0.3, &mut rng);
    let eps = 0.05;
    // Per-copy: weak For-Each guarantee (δ = 0.3!).
    let params = SketchParams::new(2, eps, 0.3);
    let per_copy = Subsample::sample_count(10, &params, Guarantee::ForEachEstimator);
    let r = MedianBoost::<Subsample>::copies_for(10, 2, 0.05);
    let boost =
        MedianBoost::build_with(r, |_| Subsample::with_sample_count(&db, per_copy, eps, &mut rng));
    let worst = all_itemsets(10, 2)
        .map(|t| (boost.estimate(&t) - db.frequency(&t)).abs())
        .fold(0.0f64, f64::max);
    assert!(worst <= eps, "boosted max error {worst} > ε={eps}");
}

#[test]
fn sketch_sizes_are_consistent_with_bounds_module() {
    use itemset_sketches::core::bounds;
    let mut rng = Rng64::seeded(208);
    let (n, d, k, eps) = (5_000usize, 16usize, 2usize, 0.05f64);
    let db = generators::uniform(n, d, 0.3, &mut rng);
    let params = SketchParams::new(k, eps, 0.1);
    let regime = bounds::Regime { n: n as u64, d: d as u64, k: k as u64, epsilon: eps, delta: 0.1 };
    // Measured sizes within a small constant of the formulas.
    let sub = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);
    let predicted = bounds::subsample_bits(&regime, Guarantee::ForAllEstimator);
    let ratio = sub.size_bits() as f64 / predicted;
    // The serialized form pads each row to whole u64 words: at d = 16 that
    // alone is a 4x overhead versus the formula's d bits per row.
    assert!((0.5..6.0).contains(&ratio), "subsample size off formula by {ratio}x");
    let ans = ReleaseAnswersIndicator::build(&db, k, eps);
    let predicted = bounds::release_answers_bits(&regime, Guarantee::ForAllIndicator);
    let ratio = ans.size_bits() as f64 / predicted;
    assert!((0.5..4.0).contains(&ratio), "answers size off formula by {ratio}x");
}
