//! Crash-recovery round-trips for the sketch log, end to end through the
//! serving tier (DESIGN.md §14).
//!
//! A server booted from a log that lost its tail must serve *exactly* the
//! answers of the surviving record prefix — bit for bit, at 1 and 4
//! per-sketch threads — and the two log rewrites (compaction, migration)
//! must be invisible to every query. Identity is always checked at the
//! byte level: the serialized query `Response`s are compared, not just
//! the decoded numbers.

use itemset_sketches::prelude::*;
use itemset_sketches::serve::{QueryMode, Request, Response, ServeConfig, SketchServer};
use itemset_sketches::store::materialize;
use itemset_sketches::streaming::{CountMinSketch, StreamCounter};
use std::collections::BTreeMap;
use std::path::PathBuf;

const DIMS: usize = 24;
const EPSILON: f64 = 0.1;
const RAI_K: usize = 2;

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        Scratch(std::env::temp_dir().join(format!("ifs-store-{}-{tag}.log", std::process::id())))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn db(seed: u64, rows: usize) -> Database {
    let mut rng = Rng64::seeded(seed);
    generators::uniform(rows, DIMS, 0.3, &mut rng)
}

/// Writes the test fleet: a ReleaseDb merge run split at the half, a decoy
/// `Put` later shadowed, a Subsample, both answers stores, and one
/// unservable Count-Min record (a shared log legitimately carries those).
fn write_fleet_log(path: &std::path::Path, seed: u64) -> SketchLog {
    let full = db(seed, 40);
    let mut log = SketchLog::create(path).expect("create");
    let half = full.rows() / 2;
    let front: Vec<Vec<u32>> = (0..half).map(|r| full.row_itemset(r).items().to_vec()).collect();
    let back: Vec<Vec<u32>> =
        (half..full.rows()).map(|r| full.row_itemset(r).items().to_vec()).collect();
    let front_db = Database::from_rows(DIMS, &front);
    let back_db = Database::from_rows(DIMS, &back);
    log.append(LogOp::Merge, 0, &ReleaseDb::build(&front_db, EPSILON).snapshot_bytes())
        .expect("append");
    log.append(LogOp::Merge, 0, &ReleaseDb::build(&back_db, EPSILON).snapshot_bytes())
        .expect("append");
    // A decoy that the later Put must shadow.
    log.append(LogOp::Put, 1, &ReleaseDb::build(&db(seed ^ 1, 5), EPSILON).snapshot_bytes())
        .expect("append");
    log.append(
        LogOp::Put,
        1,
        &Subsample::with_sample_count_seeded(&full, 12, EPSILON, seed ^ 2).snapshot_bytes(),
    )
    .expect("append");
    log.append(
        LogOp::Put,
        2,
        &ReleaseAnswersIndicator::build(&full, RAI_K, EPSILON).snapshot_bytes(),
    )
    .expect("append");
    log.append(
        LogOp::Put,
        3,
        &ReleaseAnswersEstimator::build(&full, RAI_K, EPSILON).snapshot_bytes(),
    )
    .expect("append");
    let mut cm: CountMinSketch<u64> = CountMinSketch::new(32, 3, false, seed);
    (0..64u64).for_each(|i| cm.update(i % 9));
    log.append(LogOp::Put, 99, &cm.snapshot_bytes()).expect("append");
    log
}

/// Deterministic query log; the answers-store id gets exactly-`k` queries.
fn queries(seed: u64, k: Option<usize>) -> Vec<Itemset> {
    let mut rng = Rng64::seeded(seed);
    (0..32)
        .map(|_| {
            let len = k.unwrap_or_else(|| rng.below(4));
            Itemset::new(rng.distinct_sorted(DIMS, len).iter().map(|&i| i as u32).collect())
        })
        .collect()
}

/// Boots a server from materialized frames (skipping unservable kinds,
/// exactly as `ifs-serve --log` does) and returns the *serialized* answer
/// bytes of one fixed query batch per live servable id.
fn serve_all(live: &BTreeMap<u64, Vec<u8>>, threads: usize) -> Vec<(u64, Vec<u8>)> {
    let server = SketchServer::new(ServeConfig::default());
    let mut out = Vec::new();
    for (&id, frame) in live {
        let info = itemset_sketches::database::codec::peek_frame(frame).expect("valid frame");
        if !(1..=4).contains(&info.kind) {
            continue; // unservable: ingestion partial or counter sketch
        }
        server.load_frame(id, threads, frame).expect("admit");
        let (mode, qs) = match info.kind {
            3 => (QueryMode::Indicator, queries(0xBEEF, Some(RAI_K))),
            4 => (QueryMode::Estimate, queries(0xBEEF, Some(RAI_K))),
            _ => (QueryMode::Estimate, queries(0xBEEF, None)),
        };
        let resp = server.handle(&Request::Query { id, mode, queries: qs }.to_bytes());
        match Response::from_bytes(&resp).expect("decodable response") {
            Response::Error(e) => panic!("id {id}: {e}"),
            _ => out.push((id, resp)),
        }
    }
    out
}

/// Truncation at every byte of the tail record and at every record
/// boundary: the reopened log serves exactly the surviving prefix's
/// answers, bit-identically at 1 and 4 threads.
#[test]
fn crash_truncated_logs_serve_the_surviving_prefix_identically() {
    let prey = Scratch::new("crash");
    let log = write_fleet_log(&prey.0, 7);
    let records = log.records().expect("scan");
    let bytes = std::fs::read(&prey.0).expect("read");
    // Every record boundary, plus every byte inside the final record.
    let mut cuts: Vec<usize> = records.iter().map(|r| r.offset as usize).collect();
    cuts.extend(records.last().expect("nonempty").offset as usize + 1..=bytes.len());
    let scratch = Scratch::new("crash-cut");
    for cut in cuts {
        std::fs::write(&scratch.0, &bytes[..cut]).expect("write cut");
        let (recovered, report) = SketchLog::open(&scratch.0).expect("recover");
        // The survivors are exactly the records that end inside the cut.
        let next_start = |i: usize| records.get(i + 1).map_or(bytes.len(), |r| r.offset as usize);
        let complete = records.iter().enumerate().filter(|&(i, _)| next_start(i) <= cut).count();
        assert_eq!(report.records as usize, complete, "cut at {cut}");
        let expected = materialize(&records[..complete]).expect("prefix");
        let live = recovered.materialize().expect("materialize");
        assert_eq!(live, expected, "cut at {cut}: materialization must be the record prefix");
        let single = serve_all(&live, 1);
        assert_eq!(single, serve_all(&live, 4), "cut at {cut}: thread-count identity");
        assert_eq!(single, serve_all(&expected, 1), "cut at {cut}: prefix identity");
    }
}

/// Compaction is invisible to queries: the compacted log's answers equal
/// the uncompacted log's, bit for bit, at both thread counts — and a
/// compacted fleet log is strictly smaller.
#[test]
fn compaction_is_query_invisible() {
    let src = Scratch::new("compact-src");
    let dst = Scratch::new("compact-dst");
    let log = write_fleet_log(&src.0, 21);
    let (compacted, stats) = log.compact_into(&dst.0).expect("compact");
    assert_eq!(stats.records_in, 7);
    assert_eq!(stats.records_out, 5, "ids 0, 1, 2, 3, 99");
    assert!(stats.bytes_out < stats.bytes_in, "{stats:?}");
    let before = log.materialize().expect("m");
    let after = compacted.materialize().expect("m");
    assert_eq!(before, after, "frame-level identity");
    for threads in [1, 4] {
        assert_eq!(
            serve_all(&before, threads),
            serve_all(&after, threads),
            "served identity at {threads} threads"
        );
    }
}

/// Migration rewrites exactly the stale frames, shrinks a sparse v1 log,
/// and serves bit-identical answers before and after — the cross-version
/// compatibility story, end to end.
#[test]
fn migration_is_query_invisible_and_shrinks_sparse_v1_logs() {
    let src = Scratch::new("migrate-src");
    let dst = Scratch::new("migrate-dst");
    // A sparse database is where the v2 run-length layout pays off.
    let mut rng = Rng64::seeded(5);
    let sparse = generators::uniform(300, DIMS, 0.03, &mut rng);
    let mut log = SketchLog::create(&src.0).expect("create");
    log.append(LogOp::Put, 0, &ReleaseDb::build(&sparse, EPSILON).snapshot_bytes_v1())
        .expect("append");
    log.append(
        LogOp::Put,
        1,
        &Subsample::with_sample_count_seeded(&sparse, 8, EPSILON, 3).snapshot_bytes(),
    )
    .expect("append");
    let (migrated, stats) = log.migrate_into(&dst.0).expect("migrate");
    assert_eq!(stats.records, 2);
    assert_eq!(stats.rewritten, 1, "only the v1 ReleaseDb frame is stale");
    assert!(stats.bytes_out < stats.bytes_in, "v2 must shrink a sparse log: {stats:?}");
    for threads in [1, 4] {
        assert_eq!(
            serve_all(&log.materialize().expect("m"), threads),
            serve_all(&migrated.materialize().expect("m"), threads),
            "served identity at {threads} threads"
        );
    }
    // The decoded sketches are `==` across the version boundary too.
    let a = ReleaseDb::from_snapshot(&log.materialize().expect("m")[&0]).expect("v1");
    let b = ReleaseDb::from_snapshot(&migrated.materialize().expect("m")[&0]).expect("v2");
    assert_eq!(a, b);
}
