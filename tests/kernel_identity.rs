//! Property tests pinning the wide kernels to their scalar references and
//! the blocked batch paths to the unblocked answers (DESIGN.md §12).
//!
//! The CSA kernels in `ifs_util::bits` and the cache-blocked batch loops
//! in `ifs_database` are execution strategies, never semantics: every
//! result must be bit-identical to the straightforward scalar fold over
//! the same words. This suite drives that contract with random operands
//! at adversarial lengths — empty slices, sub-block slices, exact
//! 64-word CSA blocks, and ragged tails just past a block boundary — and
//! with batch block sizes that force queries to straddle block edges on
//! row counts that are not multiples of anything convenient.
//!
//! The scalar twins come from the `scalar-reference` feature of
//! `ifs-util` (the seed implementations, kept verbatim).

use itemset_sketches::database::{generators, ColumnStore, Itemset, ShardedColumnStore};
use itemset_sketches::util::{bits, Rng64};
use proptest::prelude::*;

/// Random word vector of length `len` with occasional all-ones/all-zeros
/// words, so carry chains in the CSA tree see saturated inputs too.
fn words(len: usize, rng: &mut Rng64) -> Vec<u64> {
    (0..len)
        .map(|_| match rng.below(8) {
            0 => 0,
            1 => u64::MAX,
            _ => rng.next_u64(),
        })
        .collect()
}

proptest! {
    // Fixed case count AND RNG seed: tier-1 CI must be bit-for-bit
    // reproducible, so a failure here can be replayed locally as-is.
    #![proptest_config(ProptestConfig::with_cases_and_seed(48, 0xC5A_5EED))]

    /// Every wide kernel equals its scalar reference at arbitrary
    /// lengths, including empty, sub-block, and ragged-tail slices.
    #[test]
    fn wide_kernels_match_scalar_reference(
        len in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let a = words(len, &mut rng);
        let b = words(len, &mut rng);
        let c = words(len, &mut rng);
        prop_assert_eq!(bits::count_ones(&a), bits::scalar::count_ones(&a));
        prop_assert_eq!(bits::and_count(&a, &b), bits::scalar::and_count(&a, &b));
        prop_assert_eq!(bits::and3_count(&a, &b, &c), bits::scalar::and3_count(&a, &b, &c));
        prop_assert_eq!(bits::hamming(&a, &b), bits::scalar::hamming(&a, &b));
        prop_assert_eq!(bits::is_subset(&a, &b), bits::scalar::is_subset(&a, &b));
        let (mut wide, mut narrow) = (a.clone(), a.clone());
        bits::and_assign(&mut wide, &b);
        bits::scalar::and_assign(&mut narrow, &b);
        prop_assert_eq!(&wide, &narrow);
        let (mut wide_w, mut narrow_w) = (vec![0u64; len], vec![0u64; len]);
        bits::and_write(&mut wide_w, &a, &b);
        bits::scalar::and_write(&mut narrow_w, &a, &b);
        prop_assert_eq!(&wide_w, &narrow_w);
        let (mut wide_i, mut narrow_i) = (a.clone(), a.clone());
        let got = bits::and_count_into(&mut wide_i, &b);
        let want = bits::scalar::and_count_into(&mut narrow_i, &b);
        prop_assert_eq!((wide_i, got), (narrow_i, want));
    }

    /// The fused kernels equal their unfused compositions — the exact
    /// substitution the query and mining paths made.
    #[test]
    fn fused_kernels_equal_their_compositions(
        len in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let a = words(len, &mut rng);
        let b = words(len, &mut rng);
        let c = words(len, &mut rng);
        let mut inter = a.clone();
        bits::and_assign(&mut inter, &b);
        prop_assert_eq!(bits::and3_count(&a, &b, &c), bits::and_count(&inter, &c));
        let mut fused = a.clone();
        let count = bits::and_count_into(&mut fused, &b);
        prop_assert_eq!((fused, count), (inter.clone(), bits::count_ones(&inter)));
    }

    /// Blocked batch supports are identical to per-itemset supports at
    /// every block size — especially ones that make queries straddle
    /// block boundaries on row counts with ragged final blocks.
    #[test]
    fn support_batch_blocked_matches_unblocked(
        rows in 1usize..400,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(rows, 12, 0.4, &mut rng);
        let store = ColumnStore::build(db.matrix());
        let queries: Vec<Itemset> = (0..12)
            .map(|_| {
                let len = rng.below(5);
                Itemset::new(rng.distinct_sorted(12, len).iter().map(|&i| i as u32).collect())
            })
            .collect();
        let reference: Vec<usize> = queries.iter().map(|q| store.support(q)).collect();
        // Block sizes chosen to divide, straddle, and exceed the
        // column length (rows.div_ceil(64) words per column).
        for block_words in [1usize, 2, 3, 5, 64, usize::MAX] {
            prop_assert_eq!(
                store.support_batch_blocked(&queries, block_words),
                reference.clone(),
                "block_words={}", block_words
            );
        }
        prop_assert_eq!(store.support_batch(&queries), reference.clone());
        // Thread counts only re-partition the query list; answers are
        // positionally identical.
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                store.support_batch_with_threads(&queries, threads),
                reference.clone(),
                "threads={}", threads
            );
        }
    }

    /// Sharded batch supports agree with the unsharded store at shard
    /// sizes that leave ragged final shards, at several thread counts.
    #[test]
    fn sharded_blocked_batch_matches_unsharded(
        rows in 1usize..300,
        shard_rows_sel in 0usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(rows, 10, 0.35, &mut rng);
        let flat = ColumnStore::build(db.matrix());
        // 64/128/192/320 rows per shard: none divides most row counts,
        // so the last shard is ragged and block edges fall mid-query.
        let shard_rows = 64 * (shard_rows_sel + 1) + 64 * shard_rows_sel;
        let sharded = ShardedColumnStore::build_with_shard_rows(db.matrix(), shard_rows, 1);
        let queries: Vec<Itemset> = (0..10)
            .map(|_| {
                let len = rng.below(5);
                Itemset::new(rng.distinct_sorted(10, len).iter().map(|&i| i as u32).collect())
            })
            .collect();
        let reference = flat.support_batch(&queries);
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                sharded.support_batch(&queries, threads),
                reference.clone(),
                "threads={}", threads
            );
        }
    }
}

/// Deterministic boundary sweep (not property-based): rows around every
/// multiple of the 64-row word boundary near a small block edge, so the
/// final partial word and the final partial block are both exercised.
#[test]
fn block_boundary_row_counts_are_exact() {
    let mut rng = Rng64::seeded(0xB10C_ED6E);
    for rows in [1usize, 63, 64, 65, 127, 128, 129, 191, 192, 193, 255, 256, 257] {
        let db = generators::uniform(rows, 8, 0.5, &mut rng);
        let store = ColumnStore::build(db.matrix());
        let queries = vec![
            Itemset::empty(),
            Itemset::singleton(0),
            Itemset::new(vec![0, 3]),
            Itemset::new(vec![1, 4, 6]),
            Itemset::new(vec![0, 2, 3, 5, 7]),
        ];
        let reference: Vec<usize> = queries.iter().map(|q| store.support(q)).collect();
        for block_words in [1usize, 2, 3, 4] {
            assert_eq!(
                store.support_batch_blocked(&queries, block_words),
                reference,
                "rows={rows} block_words={block_words}"
            );
        }
        assert_eq!(store.support_batch(&queries), reference, "rows={rows} default block");
    }
}
