//! Integration: mining and streaming pipelines built on sketches.

use itemset_sketches::mining::{self, oracle, rules, summary};
use itemset_sketches::prelude::*;
use itemset_sketches::streaming::{adapter, MisraGries};

#[test]
fn three_miners_agree_on_market_basket_data() {
    let mut rng = Rng64::seeded(401);
    let spec = generators::MarketBasketSpec {
        transactions: 3_000,
        items: 24,
        bundles: vec![(vec![20, 21], 0.25)],
        ..Default::default()
    };
    let db = generators::market_basket(&spec, &mut rng);
    let mut a = mining::apriori::mine(&db, 0.08, 4);
    let mut e = mining::eclat::mine(&db, 0.08, 4);
    let mut g = mining::fpgrowth::mine(&db, 0.08, 4);
    mining::sort_results(&mut a);
    mining::sort_results(&mut e);
    mining::sort_results(&mut g);
    assert_eq!(a, e, "apriori vs eclat");
    assert_eq!(a, g, "apriori vs fp-growth");
    assert!(!a.is_empty());
}

#[test]
fn sketch_mining_pipeline_end_to_end() {
    let mut rng = Rng64::seeded(402);
    let spec = generators::MarketBasketSpec {
        transactions: 25_000,
        items: 28,
        bundles: vec![(vec![24, 25, 26], 0.2), (vec![20, 21], 0.15)],
        ..Default::default()
    };
    let db = generators::market_basket(&spec, &mut rng);
    let theta = 0.1;
    let eps = 0.02;
    let params = SketchParams::new(3, eps, 0.05);
    let sketch = Subsample::build(&db, &params, Guarantee::ForAllEstimator, &mut rng);

    // [MT96]: mining the sketch at θ − ε catches every θ-frequent itemset.
    let mined = oracle::mine_with_estimator(&sketch, db.dims(), theta - eps, 3);
    let exact = mining::apriori::mine(&db, theta, 3);
    let (recall, _) = oracle::recall_precision(&mined, &exact);
    assert!(recall >= 0.98, "recall {recall}");

    // And nothing below θ − 2ε sneaks in.
    for m in &mined {
        assert!(
            db.frequency(&m.itemset) >= theta - 2.0 * eps - 1e-9,
            "itemset {} with true frequency {} < θ − 2ε",
            m.itemset,
            db.frequency(&m.itemset)
        );
    }

    // Condensed representations and rules compose on sketch output.
    let maximal = summary::maximal(&mined);
    assert!(summary::covers_all(&maximal, &mined));
    let derived = rules::derive(&mined, 0.7);
    for r in &derived {
        assert!(r.confidence >= 0.7);
        // Estimated confidence close to exact confidence.
        let exact_conf =
            db.frequency(&r.antecedent.union(&r.consequent)) / db.frequency(&r.antecedent);
        assert!(
            (r.confidence - exact_conf).abs() < 0.25,
            "rule {} => {}: est {} vs exact {}",
            r.antecedent,
            r.consequent,
            r.confidence,
            exact_conf
        );
    }
}

#[test]
fn streaming_adapter_matches_exact_counts_with_big_budget() {
    let mut rng = Rng64::seeded(403);
    let db = generators::uniform(800, 14, 0.25, &mut rng);
    // Budget large enough to track every pair exactly: C(14,2) = 91.
    let mut mg = MisraGries::new(200, adapter::itemset_id_bits(14, 2));
    adapter::feed_rows(&db, 2, &mut mg, usize::MAX);
    for comb in itemset_sketches::util::combin::Combinations::new(14, 2) {
        let t = Itemset::new(comb);
        let est = adapter::itemset_frequency(&mg, &t, db.rows());
        let truth = db.frequency(&t);
        assert!(
            (est - truth).abs() < 1e-9,
            "{t}: stream {est} vs exact {truth} (no evictions should occur)"
        );
    }
}

#[test]
fn closed_itemsets_preserve_all_frequencies() {
    let mut rng = Rng64::seeded(404);
    let db = generators::uniform(400, 12, 0.4, &mut rng);
    let all = mining::apriori::mine(&db, 0.15, 3);
    let closed = summary::closed(&all);
    // Defining property: every frequent itemset's frequency equals the max
    // frequency among closed supersets (including itself).
    for m in &all {
        let best = closed
            .iter()
            .filter(|c| m.itemset.items().iter().all(|i| c.itemset.contains(*i)))
            .map(|c| c.frequency)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (best - m.frequency).abs() < 1e-9,
            "{}: closed reconstruction {} vs {}",
            m.itemset,
            best,
            m.frequency
        );
    }
}
