//! The serving tier serves *exactly* the offline engine's answers, and
//! refuses everything else typed (DESIGN.md §11).
//!
//! Property-tested (fixed case count and seed, like every suite here)
//! against `ifs_serve::SketchServer` through its byte-level `handle`
//! entry point — the same frames a socket carries:
//!
//! * **Served identity** — for random databases and query logs, answers
//!   served over the protocol are bit-identical to the sharded engine
//!   queried directly, at per-sketch thread counts 1 and 4 (serving is an
//!   execution strategy, never an approximation).
//! * **Adversarial request bytes never panic** — truncation at *every*
//!   prefix length, flipped magic, version skew, a flipped body byte, and
//!   trailing garbage each map to the right `DecodeError` variant, and the
//!   server answers each with a typed error response.
//! * **Eviction transparency** — under a hot-set budget that forces an
//!   evict/reload cycle on every batch, served answers stay bit-identical
//!   (the snapshot round-trip contract, load-bearing in production).
//! * **Explicit backpressure** — with every in-flight slot held, a query
//!   refuses with `Overloaded` instead of queueing; releasing a slot
//!   restores service.
//! * **Contract edges** — empty batches, unknown ids, over-budget frames,
//!   out-of-contract queries, mode/kind mismatches, and unservable kinds
//!   each produce their specific typed refusal, over a real TCP connection
//!   included.

use itemset_sketches::database::codec::DecodeError;
use itemset_sketches::prelude::*;
use itemset_sketches::serve::{
    net, Answers, QueryMode, Request, Response, ServeConfig, ServeError, ServedSketch,
    SketchServer, PROTOCOL_VERSION, REQUEST_KIND,
};
use itemset_sketches::streaming::StreamCounter;
use proptest::prelude::*;

/// A random query log over `d` attributes with cardinalities 0..=3
/// (distinct sorted items, as the itemset codec requires).
fn random_queries(d: usize, count: usize, rng: &mut Rng64) -> Vec<Itemset> {
    (0..count)
        .map(|_| {
            let k = rng.below(4).min(d);
            Itemset::new(rng.distinct_sorted(d, k).iter().map(|&i| i as u32).collect())
        })
        .collect()
}

/// Round-trips one query batch through the server's byte-level entry
/// point and returns the decoded answers.
fn serve_batch(server: &SketchServer, id: u64, mode: QueryMode, queries: &[Itemset]) -> Response {
    let bytes = server.handle(&Request::Query { id, mode, queries: queries.to_vec() }.to_bytes());
    Response::from_bytes(&bytes).expect("every server output must decode as a response")
}

fn expect_error(resp: Response) -> ServeError {
    match resp {
        Response::Error(e) => e,
        other => panic!("expected a typed refusal, got {other:?}"),
    }
}

proptest! {
    // Fixed case count AND RNG seed: tier-1 CI must be bit-for-bit
    // reproducible, so a failure here can be replayed locally as-is.
    #![proptest_config(ProptestConfig::with_cases_and_seed(12, 0x5E17E))]

    /// Served answers equal the sharded engine queried directly, bit for
    /// bit, at 1 and 4 per-sketch threads, in both query modes.
    #[test]
    fn served_answers_match_the_sharded_engine(
        seed in any::<u64>(),
        rows in 1usize..50,
        dims in 1usize..40,
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(rows, dims, 0.3, &mut rng);
        let offline = ReleaseDb::build(&db, 0.2);
        let frame = offline.snapshot_bytes();
        let queries = random_queries(dims, 40, &mut rng);
        for threads in [1usize, 4] {
            let server = SketchServer::new(ServeConfig::default());
            let loaded = Response::from_bytes(
                &server.handle(&Request::Load { id: 1, threads, frame: frame.clone() }.to_bytes()),
            ).expect("load response decodes");
            prop_assert_eq!(
                loaded,
                Response::Loaded {
                    id: 1,
                    kind: itemset_sketches::core::snapshot::KIND_RELEASE_DB,
                    size_bits: frame.len() as u64 * 8,
                    evicted: vec![],
                }
            );
            let sharded = offline.clone().with_threads(threads);
            match serve_batch(&server, 1, QueryMode::Estimate, &queries) {
                Response::Estimates(got) => {
                    let got: Vec<u64> = got.iter().map(|f| f.to_bits()).collect();
                    let want: Vec<u64> =
                        sharded.estimate_batch(&queries).iter().map(|f| f.to_bits()).collect();
                    prop_assert_eq!(got, want, "estimates diverged at {} threads", threads);
                }
                other => {
                    prop_assert!(false, "expected estimates: {other:?}");
                }
            }
            match serve_batch(&server, 1, QueryMode::Indicator, &queries) {
                Response::Indicators(got) => {
                    prop_assert_eq!(
                        got,
                        sharded.is_frequent_batch(&queries),
                        "indicators diverged at {} threads",
                        threads
                    );
                }
                other => {
                    prop_assert!(false, "expected indicators: {other:?}");
                }
            }
        }
    }

    /// Every class of adversarial request bytes maps to its `DecodeError`
    /// variant, and the server answers each with a typed error response —
    /// no input panics the serving loop.
    #[test]
    fn adversarial_request_frames_refuse_typed(seed in any::<u64>()) {
        let mut rng = Rng64::seeded(seed);
        let queries = random_queries(16, 8, &mut rng);
        let request = Request::Query { id: 3, mode: QueryMode::Estimate, queries };
        let bytes = request.to_bytes();
        prop_assert_eq!(&Request::from_bytes(&bytes).expect("roundtrip"), &request);

        // Truncation at every prefix length.
        for cut in 0..bytes.len() {
            prop_assert!(Request::from_bytes(&bytes[..cut]).is_err(), "prefix {} decoded", cut);
        }
        // Flipped magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        prop_assert!(matches!(
            Request::from_bytes(&bad_magic),
            Err(DecodeError::BadMagic(_))
        ));
        // Version skew refuses before the checksum is consulted.
        let mut future = bytes.clone();
        future[6..8].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
        prop_assert!(matches!(
            Request::from_bytes(&future),
            Err(DecodeError::UnsupportedVersion { kind: REQUEST_KIND, .. })
        ));
        // A flipped body byte fails the checksum.
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x01;
        prop_assert!(matches!(
            Request::from_bytes(&flipped),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
        // Trailing garbage is surplus, not silently ignored.
        let mut long = bytes.clone();
        long.push(0xEE);
        prop_assert!(matches!(
            Request::from_bytes(&long),
            Err(DecodeError::TrailingBytes { extra: 1 })
        ));

        // And the server turns each into a decodable error response.
        let server = SketchServer::new(ServeConfig::default());
        for attack in [&bad_magic, &future, &flipped, &long, &bytes[..bytes.len() / 2].to_vec()] {
            let out = server.handle(attack);
            match Response::from_bytes(&out).expect("refusals must decode") {
                Response::Error(ServeError::Decode(_)) => {}
                other => {
                    prop_assert!(false, "expected refusal: {other:?}");
                }
            }
        }
    }
}

/// A hot-set budget holding exactly one decoded sketch forces an
/// evict/reload on every round-robin batch; answers must not change.
#[test]
fn eviction_then_reload_is_bit_identical() {
    let mut rng = Rng64::seeded(0xE71C7);
    let db = generators::uniform(80, 32, 0.3, &mut rng);
    let sketches = [ReleaseDb::build(&db, 0.2), ReleaseDb::build(&db, 0.4)];
    let frames: Vec<Vec<u8>> = sketches.iter().map(|s| s.snapshot_bytes()).collect();
    let budget = frames.iter().map(|f| f.len() as u64 * 8).max().unwrap();
    let server = SketchServer::new(ServeConfig { budget_bits: budget, ..Default::default() });
    for (id, frame) in frames.iter().enumerate() {
        server.load_frame(id as u64, 1, frame).expect("admit");
    }
    // Both frames fit the budget alone but not together: the second load
    // already evicted the first.
    assert_eq!(server.stats().hot, 1);
    for b in 0..10 {
        let id = b % sketches.len();
        let queries = random_queries(32, 20, &mut rng);
        match serve_batch(&server, id as u64, QueryMode::Estimate, &queries) {
            Response::Estimates(got) => {
                let got: Vec<u64> = got.iter().map(|f| f.to_bits()).collect();
                let want: Vec<u64> =
                    sketches[id].estimate_batch(&queries).iter().map(|f| f.to_bits()).collect();
                assert_eq!(got, want, "batch {b}: reloaded sketch diverged");
            }
            other => panic!("expected estimates, got {other:?}"),
        }
    }
    let stats = server.stats();
    assert!(stats.evictions >= 10, "round-robin under a one-sketch budget must thrash");
    assert!(stats.hot_bits <= stats.budget_bits, "hot set exceeded its budget");
}

/// With every in-flight slot held, queries refuse with `Overloaded`;
/// releasing a slot restores service. Deterministic: the slots are held
/// directly, no timing involved.
#[test]
fn backpressure_refuses_when_saturated() {
    let mut rng = Rng64::seeded(0xBACC);
    let db = generators::uniform(20, 16, 0.3, &mut rng);
    let frame = ReleaseDb::build(&db, 0.2).snapshot_bytes();
    let server = SketchServer::new(ServeConfig { max_in_flight: 2, ..Default::default() });
    server.load_frame(0, 1, &frame).expect("admit");
    let held: Vec<_> = (0..2).map(|_| server.try_begin_batch().expect("free slot")).collect();
    let err = expect_error(serve_batch(&server, 0, QueryMode::Estimate, &[Itemset::empty()]));
    assert_eq!(err, ServeError::Overloaded { in_flight: 2, limit: 2 });
    // Loads and stats are not query batches: they stay serviceable under
    // saturation (an operator can still inspect a saturated server).
    assert_eq!(server.stats().in_flight, 2);
    drop(held);
    match serve_batch(&server, 0, QueryMode::Estimate, &[Itemset::empty()]) {
        Response::Estimates(v) => assert_eq!(v.len(), 1),
        other => panic!("released slot must restore service, got {other:?}"),
    }
    assert_eq!(server.stats().in_flight, 0);
}

/// The protocol's contract edges, each with its specific typed refusal.
#[test]
fn contract_edges_refuse_typed() {
    let mut rng = Rng64::seeded(0xED6E5);
    let db = generators::uniform(30, 12, 0.3, &mut rng);
    let rdb_frame = ReleaseDb::build(&db, 0.2).snapshot_bytes();
    let rai_frame = ReleaseAnswersIndicator::build(&db, 2, 0.2).snapshot_bytes();
    let server = SketchServer::new(ServeConfig::default());

    // Zero-sketch hot set: queries refuse with the unknown id, empty or not.
    assert_eq!(
        expect_error(serve_batch(&server, 7, QueryMode::Estimate, &[])),
        ServeError::UnknownSketch { id: 7 }
    );

    server.load_frame(0, 2, &rdb_frame).expect("admit release-db");
    server.load_frame(1, 1, &rai_frame).expect("admit answers store");

    // Empty batches answer empty, in both modes — not an error.
    assert_eq!(serve_batch(&server, 0, QueryMode::Estimate, &[]), Response::Estimates(vec![]));
    assert_eq!(serve_batch(&server, 0, QueryMode::Indicator, &[]), Response::Indicators(vec![]));

    // Out-of-contract queries: item beyond dims, wrong cardinality.
    let err = expect_error(serve_batch(
        &server,
        0,
        QueryMode::Estimate,
        &[Itemset::empty(), Itemset::singleton(12)],
    ));
    assert!(matches!(err, ServeError::BadQuery { index: 1, .. }), "{err}");
    let err = expect_error(serve_batch(
        &server,
        1,
        QueryMode::Indicator,
        &[Itemset::new(vec![0, 1]), Itemset::singleton(3)],
    ));
    assert!(matches!(err, ServeError::BadQuery { index: 1, .. }), "{err}");

    // A mode the sketch's contract cannot answer.
    assert_eq!(
        expect_error(serve_batch(&server, 1, QueryMode::Estimate, &[Itemset::new(vec![0, 1])])),
        ServeError::Unanswerable {
            kind: itemset_sketches::core::snapshot::KIND_RELEASE_ANSWERS_INDICATOR,
            mode: QueryMode::Estimate,
        }
    );

    // A frame larger than the whole hot-set budget refuses at admission
    // and leaves no partial state behind.
    let tiny = SketchServer::new(ServeConfig { budget_bits: 8, ..Default::default() });
    assert_eq!(
        tiny.load_frame(0, 1, &rdb_frame),
        Err(ServeError::FrameOverBudget { size_bits: rdb_frame.len() as u64 * 8, budget_bits: 8 })
    );
    assert_eq!(tiny.stats().admitted, 0);

    // An unservable kind (a counter sketch) refuses over the wire too.
    let mut cm = itemset_sketches::streaming::CountMinSketch::<u32>::new(64, 2, false, 7);
    cm.update(3);
    let resp = Response::from_bytes(
        &server.handle(&Request::Load { id: 9, threads: 1, frame: cm.snapshot_bytes() }.to_bytes()),
    )
    .expect("refusal decodes");
    assert_eq!(
        expect_error(resp),
        ServeError::UnservableKind { kind: itemset_sketches::core::snapshot::KIND_COUNT_MIN }
    );
}

/// The whole tier over a real loopback connection: load, query both
/// modes, and verify bit identity against the offline engine — the
/// in-process identity property, with a socket in the middle.
#[test]
fn tcp_roundtrip_serves_identical_answers() {
    let mut rng = Rng64::seeded(0x7C9);
    let db = generators::uniform(60, 24, 0.3, &mut rng);
    let offline = ReleaseDb::build(&db, 0.2);
    let frame = offline.snapshot_bytes();
    let queries = random_queries(24, 30, &mut rng);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    let server = SketchServer::new(ServeConfig::default());
    std::thread::scope(|scope| {
        scope.spawn(|| net::serve_listener(&server, &listener, Some(1)).expect("serve one"));
        let mut client = net::Client::connect(&addr, 5_000).expect("connect");
        let resp = client
            .call(&Request::Load { id: 4, threads: 2, frame: frame.clone() })
            .expect("transport")
            .expect("decode");
        assert!(matches!(resp, Response::Loaded { id: 4, .. }), "{resp:?}");
        let resp = client
            .call(&Request::Query { id: 4, mode: QueryMode::Indicator, queries: queries.clone() })
            .expect("transport")
            .expect("decode");
        assert_eq!(resp, Response::Indicators(offline.is_frequent_batch(&queries)));
        // A garbage request on the same connection gets a typed refusal
        // (and, being unframeable, a close).
        let err =
            expect_error(Response::from_bytes(&server.handle(b"junk")).expect("refusal decodes"));
        assert!(matches!(err, ServeError::Decode(DecodeError::BadMagic(_))), "{err}");
    });
}

/// The served-sketch dispatch admits every servable kind and the admitted
/// sketch's measured size matches what the server charges the budget.
#[test]
fn admission_size_accounting_is_measured() {
    let mut rng = Rng64::seeded(0xACC7);
    let db = generators::uniform(40, 20, 0.3, &mut rng);
    let frames = [
        ReleaseDb::build(&db, 0.2).snapshot_bytes(),
        Subsample::with_sample_count_seeded(&db, 16, 0.2, 0x51).snapshot_bytes(),
        ReleaseAnswersIndicator::build(&db, 2, 0.2).snapshot_bytes(),
        ReleaseAnswersEstimator::build(&db, 2, 0.2).snapshot_bytes(),
    ];
    let server = SketchServer::new(ServeConfig::default());
    for (id, frame) in frames.iter().enumerate() {
        let out = server.load_frame(id as u64, 1, frame).expect("servable");
        let (kind, size_bits) = (out.kind, out.size_bits);
        assert_eq!(size_bits, frame.len() as u64 * 8, "kind {kind}: size must be measured");
        assert_eq!((out.generation, out.previous_kind), (1, None), "first admit of each id");
        let sketch = ServedSketch::admit(frame, 1).expect("admit");
        assert_eq!(sketch.kind(), kind);
        // Empty batches are answerable on every kind that supports the mode.
        if !matches!(sketch, ServedSketch::AnswersIndicator(_)) {
            assert_eq!(sketch.answer(QueryMode::Estimate, &[]), Ok(Answers::Estimates(vec![])));
        }
    }
    let stats = server.stats();
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.hot, 4);
    assert_eq!(stats.hot_bits, frames.iter().map(|f| f.len() as u64 * 8).sum::<u64>());
}
