//! Integration: the encoding arguments hold end-to-end against real
//! sketches — valid sketches leak everything, starved sketches cannot.

use itemset_sketches::lowerbounds::accounting::{Aggregate, RoundTrip};
use itemset_sketches::lowerbounds::thm13::HardInstance;
use itemset_sketches::lowerbounds::thm15::Thm15Instance;
use itemset_sketches::lowerbounds::thm16::RowProductInstance;
use itemset_sketches::prelude::*;

fn random_bits(len: usize, rng: &mut Rng64) -> Vec<bool> {
    (0..len).map(|_| rng.bernoulli(0.5)).collect()
}

#[test]
fn thm13_valid_subsample_leaks_payload() {
    // A For-All-Indicator subsample with δ = 0.05 must reveal ~all payload
    // bits; recovery rate at least 95% across trials.
    let mut rng = Rng64::seeded(301);
    let (d, k, inv_eps) = (16usize, 2usize, 8usize);
    let eps = 1.0 / inv_eps as f64;
    let payload = random_bits(HardInstance::capacity(d, inv_eps), &mut rng);
    let inst = HardInstance::encode(d, k, inv_eps, &payload, 8);
    let params = SketchParams::new(k, eps, 0.05);
    let sketch = Subsample::build(inst.database(), &params, Guarantee::ForAllIndicator, &mut rng);
    let rate = inst.recovery_rate(&inst.decode(&sketch));
    assert!(rate >= 0.95, "valid sketch recovered only {rate}");
}

#[test]
fn thm13_starved_sketch_cannot_leak() {
    let mut rng = Rng64::seeded(302);
    let (d, k, inv_eps) = (16usize, 2usize, 8usize);
    let payload = random_bits(HardInstance::capacity(d, inv_eps), &mut rng);
    let inst = HardInstance::encode(d, k, inv_eps, &payload, 8);
    // One sampled row carries d bits; the payload is 64 bits.
    let sketch = Subsample::with_sample_count(inst.database(), 1, inst.epsilon(), &mut rng);
    let rate = inst.recovery_rate(&inst.decode(&sketch));
    assert!(rate < 0.85, "starved sketch recovered {rate} — impossible compression");
}

#[test]
fn thm15_roundtrip_through_valid_sketch_and_accounting() {
    let mut rng = Rng64::seeded(303);
    let (d, k) = (32usize, 3usize);
    let eps = 1.0 / 50.0;
    let capacity = Thm15Instance::message_capacity(d, k).unwrap();
    let mut agg = Aggregate::default();
    for _ in 0..3 {
        let msg = random_bits(capacity, &mut rng);
        let inst = Thm15Instance::encode(d, k, &msg);
        let sketch = ReleaseDb::build(inst.database(), eps);
        let (acc, decoded) = inst.attack(&sketch, eps, &mut rng);
        agg.push(RoundTrip {
            payload_bits: capacity as u64,
            sketch_bits: sketch.size_bits(),
            recovered_fraction: acc,
            exact: decoded.as_deref() == Some(&msg[..]),
        });
    }
    assert_eq!(agg.exact_rate(), 1.0, "valid sketch must always leak the message");
    // The information bound must never be violated: the sketch is larger
    // than the payload (here trivially, since RELEASE-DB stores 2dv bits).
    assert!(!agg.any_violation(0.9));
}

#[test]
fn thm15_subsample_with_all_rows_still_works() {
    // Sampling v rows from a v-row database eventually sees every row; with
    // 4v draws the coupon-collector gap is tiny and the attack succeeds.
    let mut rng = Rng64::seeded(304);
    let (d, k) = (32usize, 2usize);
    let eps = 1.0 / 50.0;
    let capacity = Thm15Instance::message_capacity(d, k).unwrap();
    let msg = random_bits(capacity, &mut rng);
    let inst = Thm15Instance::encode(d, k, &msg);
    let v = inst.database().rows();
    let sketch = Subsample::with_sample_count(inst.database(), 8 * v, eps, &mut rng);
    let (_, decoded) = inst.attack(&sketch, eps, &mut rng);
    assert_eq!(decoded.as_deref(), Some(&msg[..]), "8v-row sample should carry the message");
}

#[test]
fn thm16_estimator_sketch_leaks_secret_column() {
    let mut rng = Rng64::seeded(305);
    let secret = random_bits(20, &mut rng);
    let inst = RowProductInstance::new(6, 2, &secret, &mut rng);
    // A For-All-Estimator subsample with tight ε on the 20-row database:
    // sampling many rows gives near-exact answers.
    let sketch = Subsample::with_sample_count(inst.database(), 4000, 0.01, &mut rng);
    let answers = inst.answers_from_sketch(&sketch);
    let decoded = inst.recover_l1(&answers).expect("LP solvable");
    let acc = inst.accuracy(&decoded);
    assert!(acc >= 0.95, "estimator sketch leaked only {acc}");
}

#[test]
fn thm16_starved_estimator_fails() {
    let mut rng = Rng64::seeded(306);
    let secret = random_bits(24, &mut rng);
    let inst = RowProductInstance::new(6, 2, &secret, &mut rng);
    let mut accs = Vec::new();
    for _ in 0..5 {
        let sketch = Subsample::with_sample_count(inst.database(), 2, 0.01, &mut rng);
        let answers = inst.answers_from_sketch(&sketch);
        let acc = inst.recover_l1(&answers).map(|d| inst.accuracy(&d)).unwrap_or(0.5);
        accs.push(acc);
    }
    let mean = itemset_sketches::util::stats::mean(&accs);
    assert!(mean < 0.95, "2-row sketch should not reliably carry 24 bits (mean acc {mean})");
}

#[test]
fn recovered_bits_never_exceed_sketch_capacity() {
    // Sweep budgets; whenever exact recovery happens, the sketch must be at
    // least as large as the payload (information accounting, slack 1.0
    // because SUBSAMPLE stores raw rows — no entropy coding).
    let mut rng = Rng64::seeded(307);
    let (d, k, inv_eps) = (16usize, 2usize, 8usize);
    let payload = random_bits(HardInstance::capacity(d, inv_eps), &mut rng);
    let inst = HardInstance::encode(d, k, inv_eps, &payload, 4);
    for rows in [1usize, 2, 4, 8, 16, 32] {
        for _ in 0..3 {
            let sk = Subsample::with_sample_count(inst.database(), rows, inst.epsilon(), &mut rng);
            let rate = inst.recovery_rate(&inst.decode(&sk));
            let trip = RoundTrip {
                payload_bits: payload.len() as u64,
                sketch_bits: sk.size_bits(),
                recovered_fraction: rate,
                exact: rate == 1.0,
            };
            assert!(
                !trip.violates_information_bound(0.8),
                "rows={rows}: exact recovery from {} bits of sketch for {} payload bits",
                trip.sketch_bits,
                trip.payload_bits
            );
        }
    }
}
