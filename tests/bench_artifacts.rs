//! The committed bench artifacts obey the release-only trajectory rule.
//!
//! PR 6 established that perf numbers in the tree must come from release
//! builds — debug numbers misstate every trajectory claim the README and
//! DESIGN.md make. CI regenerates the JSONs in release mode, but that
//! gate only covered freshly emitted files; this tier-1 suite covers the
//! **repo contents**: every committed `bench_results/BENCH_*.json` must
//! say `"mode": "release"`, and the serving artifact must record the
//! connection shape (`connections`/`pipeline_depth`) so the perf
//! trajectory distinguishes single-connection from pooled runs.
//!
//! The checks run against the files as committed (the suite runs before
//! any bench in a plain `cargo test`), so a debug artifact cannot land
//! even if CI's bench legs are skipped.

use std::path::{Path, PathBuf};

/// Every committed `BENCH_*.json`, via the crate-relative bench dir.
fn bench_jsons() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("bench_results");
    let mut jsons: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("BENCH_") && name.ends_with(".json")
        })
        .collect();
    jsons.sort();
    jsons
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The tree must actually contain bench artifacts — an empty directory
/// would make the release gate below pass vacuously.
#[test]
fn the_five_bench_artifacts_are_committed() {
    let names: Vec<String> = bench_jsons()
        .iter()
        .map(|p| p.file_name().expect("file name").to_string_lossy().into_owned())
        .collect();
    for required in [
        "BENCH_ingest.json",
        "BENCH_kernels.json",
        "BENCH_serving.json",
        "BENCH_snapshot.json",
        "BENCH_store.json",
    ] {
        assert!(names.iter().any(|n| n == required), "missing {required} (found {names:?})");
    }
}

/// Every committed bench artifact must be a release-mode measurement.
/// A `"mode": "debug"` artifact misstates the perf trajectory and fails
/// tier-1, not just a CI leg.
#[test]
fn committed_bench_artifacts_are_release_mode() {
    for path in bench_jsons() {
        let body = read(&path);
        assert!(
            body.contains("\"mode\": \"release\""),
            "{}: committed bench artifacts must be measured in release mode \
             (found a non-release `mode`; regenerate with `cargo bench`/loadgen in release)",
            path.display()
        );
        assert!(
            !body.contains("\"mode\": \"debug\""),
            "{}: a debug-mode artifact may not be committed",
            path.display()
        );
    }
}

/// The store artifact must record the v1/v2 space claim its bench gate
/// asserts, so the committed number and the enforced floor travel
/// together.
#[test]
fn store_artifact_records_the_space_claim() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("bench_results/BENCH_store.json");
    let body = read(&path);
    for field in ["\"v1_bytes\":", "\"v2_bytes\":", "\"v1_over_v2\":", "\"min_required_ratio\": 2"]
    {
        assert!(body.contains(field), "{}: missing {field}", path.display());
    }
}

/// The serving artifact must record the run's connection shape, so the
/// perf trajectory distinguishes single-connection from pooled numbers.
#[test]
fn serving_artifact_records_connection_shape() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("bench_results/BENCH_serving.json");
    let body = read(&path);
    for field in
        ["\"connections\":", "\"pipeline_depth\":", "\"p999_ms\":", "\"identity_checked\": true"]
    {
        assert!(body.contains(field), "{}: missing {field}", path.display());
    }
}
