//! The pooled transport serves *exactly* the offline engine's answers —
//! pipelined, micro-batched, and across hot reloads (DESIGN.md §13).
//!
//! Property-tested (fixed case count and seed, like every suite here)
//! over real loopback TCP against `serve_pooled`:
//!
//! * **Pooled served identity** — pipelined connections multiplexed onto
//!   a fixed worker pool receive answers bit-identical to the sharded
//!   engine queried directly, at per-sketch thread counts 1 and 4:
//!   pooling, pipelining, and cross-connection micro-batching are
//!   execution strategies, never approximations.
//! * **Adversarial connections** — a slowloris peer dribbling a frame
//!   byte by byte does not stall other connections on its worker;
//!   mid-pipeline garbage closes only the offending connection (after
//!   in-order answers and one typed framing error); `Overloaded`
//!   backpressure saturates and recovers through the pool.
//! * **Hot reload** — re-admitting a live id answers `Reloaded` with a
//!   bumped generation; queries racing the reload answer either the old
//!   or the new snapshot *exactly* (never a torn blend), and queries
//!   after it answer the new one.

use itemset_sketches::prelude::*;
use itemset_sketches::serve::{
    net, pool, Answers, Client, PoolConfig, QueryMode, Request, Response, ServeConfig, ServeError,
    SketchServer,
};
use proptest::prelude::*;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};

/// A pool config shaped for tests: fixed worker count (no dependence on
/// the host's parallelism) and a short idle sleep.
fn test_pool() -> PoolConfig {
    PoolConfig { workers: 2, ..PoolConfig::default() }
}

/// Binds a loopback listener and returns it with its address.
fn loopback() -> (TcpListener, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    (listener, addr)
}

fn random_queries(d: usize, count: usize, rng: &mut Rng64) -> Vec<Itemset> {
    (0..count)
        .map(|_| {
            let k = rng.below(4).min(d);
            Itemset::new(rng.distinct_sorted(d, k).iter().map(|&i| i as u32).collect())
        })
        .collect()
}

fn expect_answers(resp: Response) -> Answers {
    match resp {
        Response::Estimates(v) => Answers::Estimates(v),
        Response::Indicators(v) => Answers::Indicators(v),
        other => panic!("expected answers, got {other:?}"),
    }
}

proptest! {
    // Fixed case count AND RNG seed: tier-1 CI must be bit-for-bit
    // reproducible, so a failure here can be replayed locally as-is.
    #![proptest_config(ProptestConfig::with_cases_and_seed(6, 0x900D))]

    /// Two pipelined connections over the pooled transport receive
    /// bit-identical answers to the sharded engine, at 1 and 4 threads.
    /// Pipeline depth 3 forces read-ahead; two connections querying the
    /// same id force cross-connection aggregation.
    #[test]
    fn pooled_pipelined_answers_match_the_sharded_engine(
        seed in any::<u64>(),
        rows in 1usize..50,
        dims in 1usize..40,
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(rows, dims, 0.3, &mut rng);
        let offline = ReleaseDb::build(&db, 0.2);
        let frame = offline.snapshot_bytes();
        let batches: Vec<Vec<Itemset>> =
            (0..6).map(|_| random_queries(dims, 12, &mut rng)).collect();
        for threads in [1usize, 4] {
            let sharded = offline.clone().with_threads(threads);
            let server = SketchServer::new(ServeConfig::default());
            let (listener, addr) = loopback();
            let config = test_pool();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    pool::serve_pooled(&server, &listener, &config, Some(2))
                        .expect("pooled server serves");
                });
                let mut a = Client::connect(&addr, 2_000).expect("connect a");
                let mut b = Client::connect(&addr, 2_000).expect("connect b");
                a.call(&Request::Load { id: 1, threads, frame: frame.clone() })
                    .expect("transport").expect("decodes");
                // Depth-3 pipelines on both connections, same id: the
                // worker aggregates across them.
                for chunk in batches.chunks(3) {
                    for client in [&mut a, &mut b] {
                        for queries in chunk {
                            client.send(&Request::Query {
                                id: 1,
                                mode: QueryMode::Estimate,
                                queries: queries.clone(),
                            }).expect("send");
                        }
                    }
                    for client in [&mut a, &mut b] {
                        for queries in chunk {
                            let resp = client.recv().expect("transport").expect("decodes");
                            let want: Vec<u64> = sharded
                                .estimate_batch(queries).iter().map(|f| f.to_bits()).collect();
                            match resp {
                                Response::Estimates(got) => {
                                    let got: Vec<u64> =
                                        got.iter().map(|f| f.to_bits()).collect();
                                    assert_eq!(got, want, "diverged at {threads} threads");
                                }
                                other => panic!("expected estimates: {other:?}"),
                            }
                        }
                    }
                }
            });
        }
    }
}

/// A slowloris peer dribbling its frame one byte at a time must not
/// stall a healthy connection multiplexed onto the same pool — and must
/// still get the right answer once its frame completes.
#[test]
fn tcp_slowloris_does_not_stall_other_connections() {
    let mut rng = Rng64::seeded(0x510E);
    let db = generators::uniform(30, 16, 0.3, &mut rng);
    let offline = ReleaseDb::build(&db, 0.2);
    let frame = offline.snapshot_bytes();
    let queries = random_queries(16, 8, &mut rng);
    let request = Request::Query { id: 1, mode: QueryMode::Estimate, queries: queries.clone() };
    let expected = Answers::Estimates(offline.estimate_batch(&queries));

    let server = SketchServer::new(ServeConfig::default());
    server.load_frame(1, 1, &frame).expect("admit");
    let (listener, addr) = loopback();
    // One worker: the slow and fast connections share it by construction.
    let config = PoolConfig { workers: 1, ..PoolConfig::default() };
    std::thread::scope(|scope| {
        scope.spawn(|| {
            pool::serve_pooled(&server, &listener, &config, Some(2)).expect("pooled server serves");
        });
        let mut slow = TcpStream::connect(&addr).expect("connect slow");
        let mut fast = Client::connect(&addr, 2_000).expect("connect fast");
        // The slow peer delivers half its frame, one byte at a time.
        let wire = request.to_bytes();
        let (first_half, second_half) = wire.split_at(wire.len() / 2);
        for &b in first_half {
            slow.write_all(&[b]).expect("dribble");
            slow.flush().expect("flush");
        }
        // The fast connection completes several calls meanwhile.
        for _ in 0..3 {
            let resp = fast.call(&request).expect("transport").expect("decodes");
            assert_eq!(expect_answers(resp), expected, "fast connection stalled or diverged");
        }
        // The slow peer finishes; its answer is exact.
        for &b in second_half {
            slow.write_all(&[b]).expect("dribble");
            slow.flush().expect("flush");
        }
        let resp = net::read_frame(&mut slow)
            .expect("transport")
            .expect("a response arrives")
            .expect("well-formed");
        let resp = Response::from_bytes(&resp).expect("decodes");
        assert_eq!(expect_answers(resp), expected, "slow connection diverged");
    });
}

/// Mid-pipeline garbage: the requests before the garbage are answered in
/// order, one typed framing error follows, and the connection closes —
/// while a healthy connection on the same pool is unaffected.
#[test]
fn tcp_garbage_closes_only_the_offending_connection() {
    let mut rng = Rng64::seeded(0xBAD5);
    let db = generators::uniform(30, 16, 0.3, &mut rng);
    let offline = ReleaseDb::build(&db, 0.2);
    let frame = offline.snapshot_bytes();
    let queries = random_queries(16, 8, &mut rng);
    let request = Request::Query { id: 1, mode: QueryMode::Estimate, queries: queries.clone() };
    let expected = Answers::Estimates(offline.estimate_batch(&queries));

    let server = SketchServer::new(ServeConfig::default());
    server.load_frame(1, 1, &frame).expect("admit");
    let (listener, addr) = loopback();
    let config = PoolConfig { workers: 1, ..PoolConfig::default() };
    std::thread::scope(|scope| {
        scope.spawn(|| {
            pool::serve_pooled(&server, &listener, &config, Some(2)).expect("pooled server serves");
        });
        let mut bad = TcpStream::connect(&addr).expect("connect bad");
        let mut good = Client::connect(&addr, 2_000).expect("connect good");
        // A valid pipelined request, then bytes that can never frame.
        let mut wire = request.to_bytes();
        wire.extend_from_slice(b"!!!! this is not a frame at all");
        bad.write_all(&wire).expect("write");
        bad.flush().expect("flush");
        // In order: the real answer, then the typed framing error.
        let first = net::read_frame(&mut bad).expect("transport").expect("frame").expect("valid");
        assert_eq!(
            expect_answers(Response::from_bytes(&first).expect("decodes")),
            expected,
            "the pipelined request before the garbage must be answered"
        );
        let second = net::read_frame(&mut bad).expect("transport").expect("frame").expect("valid");
        assert!(
            matches!(Response::from_bytes(&second), Ok(Response::Error(ServeError::Decode(_)))),
            "garbage must be refused typed"
        );
        // Then the connection is closed: clean EOF.
        assert!(
            net::read_frame(&mut bad).expect("clean close").is_none(),
            "the offending connection must be closed"
        );
        // The healthy connection never noticed.
        let resp = good.call(&request).expect("transport").expect("decodes");
        assert_eq!(expect_answers(resp), expected, "the healthy connection was affected");
    });
}

/// Backpressure through the pool: with every in-flight slot held,
/// pipelined queries refuse with `Overloaded`; when the slot frees, the
/// same connection's next query succeeds — saturate, then recover.
#[test]
fn tcp_overload_saturates_and_recovers_through_the_pool() {
    let mut rng = Rng64::seeded(0x0CEA);
    let db = generators::uniform(30, 16, 0.3, &mut rng);
    let offline = ReleaseDb::build(&db, 0.2);
    let frame = offline.snapshot_bytes();
    let queries = random_queries(16, 8, &mut rng);
    let request = Request::Query { id: 1, mode: QueryMode::Estimate, queries: queries.clone() };
    let expected = Answers::Estimates(offline.estimate_batch(&queries));

    let server = SketchServer::new(ServeConfig { max_in_flight: 1, ..ServeConfig::default() });
    server.load_frame(1, 1, &frame).expect("admit");
    let (listener, addr) = loopback();
    let config = test_pool();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            pool::serve_pooled(&server, &listener, &config, Some(1)).expect("pooled server serves");
        });
        let mut client = Client::connect(&addr, 2_000).expect("connect");
        // Saturate: the test holds the server's only slot directly, so
        // the refusal is deterministic, not a race.
        let held = server.try_begin_batch().expect("take the only slot");
        match client.call(&request).expect("transport").expect("decodes") {
            Response::Error(ServeError::Overloaded { in_flight, limit }) => {
                assert_eq!((in_flight, limit), (1, 1));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Recover: the slot frees, the very same connection is served.
        drop(held);
        let resp = client.call(&request).expect("transport").expect("decodes");
        assert_eq!(expect_answers(resp), expected, "service must recover after saturation");
    });
}

/// Hot-reload over the pooled transport: the reload answers `Reloaded`
/// with a bumped generation and the replaced kind, and a query pipelined
/// *behind* the reload on the same connection answers the new snapshot.
#[test]
fn tcp_hot_reload_answers_reloaded_and_switches_snapshots() {
    let mut rng = Rng64::seeded(0x4E10);
    let old_db = generators::uniform(40, 16, 0.3, &mut rng);
    let new_db = generators::uniform(40, 16, 0.5, &mut rng);
    let old_offline = ReleaseDb::build(&old_db, 0.2);
    let new_offline = ReleaseDb::build(&new_db, 0.2);
    let queries = random_queries(16, 10, &mut rng);

    let server = SketchServer::new(ServeConfig::default());
    let (listener, addr) = loopback();
    let config = test_pool();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            pool::serve_pooled(&server, &listener, &config, Some(1)).expect("pooled server serves");
        });
        let mut client = Client::connect(&addr, 2_000).expect("connect");
        let query = Request::Query { id: 7, mode: QueryMode::Estimate, queries: queries.clone() };
        // Pipeline the whole conversation: load, query, reload, query.
        client
            .send(&Request::Load { id: 7, threads: 1, frame: old_offline.snapshot_bytes() })
            .expect("send");
        client.send(&query).expect("send");
        client
            .send(&Request::Load { id: 7, threads: 1, frame: new_offline.snapshot_bytes() })
            .expect("send");
        client.send(&query).expect("send");

        let loaded = client.recv().expect("transport").expect("decodes");
        assert!(matches!(loaded, Response::Loaded { id: 7, .. }), "{loaded:?}");
        let first = client.recv().expect("transport").expect("decodes");
        assert_eq!(
            expect_answers(first),
            Answers::Estimates(old_offline.estimate_batch(&queries)),
            "the query before the reload answers the old snapshot"
        );
        let reloaded = client.recv().expect("transport").expect("decodes");
        match reloaded {
            Response::Reloaded { id, generation, previous_kind, .. } => {
                assert_eq!(id, 7);
                assert_eq!(generation, 2, "second admission of the id");
                assert_eq!(previous_kind, itemset_sketches::core::snapshot::KIND_RELEASE_DB);
            }
            other => panic!("expected Reloaded, got {other:?}"),
        }
        let second = client.recv().expect("transport").expect("decodes");
        assert_eq!(
            expect_answers(second),
            Answers::Estimates(new_offline.estimate_batch(&queries)),
            "the query after the reload answers the new snapshot"
        );
    });
}

/// The no-torn-state hammer: queries race concurrent reloads flipping id
/// 7 between two different sketches. Every single response must equal
/// one oracle's answers *exactly* — a response mixing old and new
/// answers (a torn read) fails the bit-for-bit comparison against both.
#[test]
fn tcp_hot_reload_hammer_never_observes_torn_state() {
    let mut rng = Rng64::seeded(0x7084);
    let db_a = generators::uniform(40, 16, 0.25, &mut rng);
    let db_b = generators::uniform(40, 16, 0.55, &mut rng);
    let sketch_a = ReleaseDb::build(&db_a, 0.2);
    let sketch_b = ReleaseDb::build(&db_b, 0.2);
    let queries = random_queries(16, 16, &mut rng);
    let expected_a = Answers::Estimates(sketch_a.estimate_batch(&queries));
    let expected_b = Answers::Estimates(sketch_b.estimate_batch(&queries));
    assert_ne!(expected_a, expected_b, "the two snapshots must answer differently");

    let server = SketchServer::new(ServeConfig::default());
    server.load_frame(7, 1, &sketch_a.snapshot_bytes()).expect("admit generation 1");
    let (listener, addr) = loopback();
    let config = test_pool();
    const QUERIERS: usize = 3;
    const CALLS: usize = 40;
    const RELOADS: u64 = 30;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            pool::serve_pooled(&server, &listener, &config, Some(QUERIERS + 1))
                .expect("pooled server serves");
        });
        // The reloader: flips the snapshot under id 7, over the wire.
        let frames = [sketch_a.snapshot_bytes(), sketch_b.snapshot_bytes()];
        let reloader = scope.spawn(move || {
            let mut client = Client::connect(&addr, 2_000).expect("connect reloader");
            for g in 0..RELOADS {
                let frame = frames[(g % 2 == 0) as usize].clone();
                let resp = client
                    .call(&Request::Load { id: 7, threads: 1, frame })
                    .expect("transport")
                    .expect("decodes");
                match resp {
                    Response::Reloaded { generation, .. } => {
                        assert_eq!(generation, g + 2, "generations count every admission");
                    }
                    other => panic!("expected Reloaded, got {other:?}"),
                }
            }
        });
        let addr = listener.local_addr().expect("local addr").to_string();
        for q in 0..QUERIERS {
            let addr = addr.clone();
            let (queries, expected_a, expected_b) = (&queries, &expected_a, &expected_b);
            scope.spawn(move || {
                let mut client =
                    Client::connect(&addr, 2_000).unwrap_or_else(|e| panic!("querier {q}: {e}"));
                for call in 0..CALLS {
                    let resp = client
                        .call(&Request::Query {
                            id: 7,
                            mode: QueryMode::Estimate,
                            queries: queries.clone(),
                        })
                        .expect("transport")
                        .expect("decodes");
                    let got = expect_answers(resp);
                    assert!(
                        got == *expected_a || got == *expected_b,
                        "querier {q} call {call}: torn or foreign answers: {got:?}"
                    );
                }
            });
        }
        reloader.join().expect("reloader finishes");
    });
}

/// The pooled and unpooled transports produce byte-identical responses
/// for the same requests — including refusals — so operators can switch
/// transports without any client observing a difference.
#[test]
fn pooled_and_threaded_transports_answer_identically() {
    let mut rng = Rng64::seeded(0x1DE7);
    let db = generators::uniform(30, 16, 0.3, &mut rng);
    let offline = ReleaseDb::build(&db, 0.2);
    let frame = offline.snapshot_bytes();
    let queries = random_queries(16, 8, &mut rng);
    let requests = vec![
        Request::Load { id: 1, threads: 1, frame: frame.clone() },
        Request::Query { id: 1, mode: QueryMode::Estimate, queries: queries.clone() },
        Request::Query { id: 1, mode: QueryMode::Indicator, queries },
        Request::Query { id: 99, mode: QueryMode::Estimate, queries: vec![] },
        Request::Stats,
    ];
    let mut transcripts: Vec<Vec<Response>> = Vec::new();
    for pooled in [false, true] {
        let server = SketchServer::new(ServeConfig::default());
        let (listener, addr) = loopback();
        let config = test_pool();
        let requests = &requests;
        let transcript = std::thread::scope(|scope| {
            scope.spawn(|| {
                if pooled {
                    pool::serve_pooled(&server, &listener, &config, Some(1)).expect("serves");
                } else {
                    net::serve_listener(&server, &listener, Some(1)).expect("serves");
                }
            });
            let mut client = Client::connect(&addr, 2_000).expect("connect");
            requests
                .iter()
                .map(|req| client.call(req).expect("transport").expect("decodes"))
                .collect::<Vec<_>>()
        });
        transcripts.push(transcript);
    }
    assert_eq!(transcripts[0], transcripts[1], "transports must be indistinguishable");
}
