//! Property-based tests (proptest) on the core data structures and the
//! paper's invariants.

use itemset_sketches::codes::{ConcatenatedCode, ReedSolomon};
use itemset_sketches::database::{serialize, Database, Itemset};
use itemset_sketches::prelude::*;
use itemset_sketches::solver::repair;
use itemset_sketches::util::{bits, combin};
use proptest::prelude::*;

proptest! {
    // Fixed case count AND RNG seed: tier-1 CI must be bit-for-bit
    // reproducible, so a failure here can be replayed locally as-is.
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0x1F5_5EED))]

    /// Colex rank/unrank is a bijection for arbitrary combinations.
    #[test]
    fn combin_rank_roundtrip(mut items in proptest::collection::btree_set(0u32..64, 1..6)) {
        let comb: Vec<u32> = items.iter().copied().collect();
        let rank = combin::rank_colex(&comb);
        let back = combin::unrank_colex(rank, comb.len() as u32);
        prop_assert_eq!(back, comb);
        items.clear();
    }

    /// Bit pack/unpack roundtrip at arbitrary lengths.
    #[test]
    fn bits_pack_roundtrip(bools in proptest::collection::vec(any::<bool>(), 0..300)) {
        let words = bits::pack(&bools);
        prop_assert_eq!(bits::unpack(&words, bools.len()), bools);
    }

    /// Database serialization roundtrip for arbitrary shapes and content.
    #[test]
    fn database_serialize_roundtrip(
        n in 0usize..20,
        d in 0usize..70,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.5, &mut rng);
        let back = serialize::from_bytes(&serialize::to_bytes(&db)).unwrap();
        prop_assert_eq!(db, back);
    }

    /// Frequency is monotone under subset: f(T1) >= f(T2) when T1 ⊆ T2.
    #[test]
    fn frequency_antimonotone(seed in any::<u64>()) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(60, 12, 0.5, &mut rng);
        let sup = Itemset::new(vec![1, 4, 7]);
        let sub = Itemset::new(vec![1, 7]);
        prop_assert!(db.frequency(&sub) >= db.frequency(&sup));
        prop_assert!(db.frequency(&Itemset::empty()) >= db.frequency(&sub));
    }

    /// Reed–Solomon corrects any ≤ t random corruption pattern.
    #[test]
    fn rs_corrects_random_errors(
        seed in any::<u64>(),
        num_err in 0usize..4,
    ) {
        let rs = ReedSolomon::new(15, 7); // t = 4
        let mut rng = Rng64::seeded(seed);
        let data: Vec<u8> = (0..7).map(|_| rng.below(256) as u8).collect();
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        for &p in &rng.distinct_sorted(15, num_err) {
            rx[p] ^= 1 + rng.below(255) as u8;
        }
        prop_assert_eq!(rs.decode(&rx).unwrap(), cw);
    }

    /// Concatenated code survives any ≤ guaranteed-fraction random flips.
    #[test]
    fn concat_code_guarantee(seed in any::<u64>()) {
        let code = ConcatenatedCode::for_codeword_bits(1024, 0.04).unwrap();
        let mut rng = Rng64::seeded(seed);
        let msg: Vec<bool> = (0..code.message_bits()).map(|_| rng.bernoulli(0.5)).collect();
        let mut cw = code.encode(&msg);
        let budget = (code.guaranteed_error_fraction() * cw.len() as f64).floor() as usize;
        for &p in &rng.distinct_sorted(cw.len(), budget) {
            cw[p] = !cw[p];
        }
        prop_assert_eq!(code.decode(&cw), Some(msg));
    }

    /// Lemma 19 consistency: any reconstructed vector is within the
    /// 2⌈εv⌉ Hamming bound, for arbitrary truths and adversarial dead zones.
    #[test]
    fn repair_within_hamming_bound(
        truth in 0u64..(1 << 12),
        seed in any::<u64>(),
    ) {
        let v = 12;
        let eps = 0.3; // εv = 3.6: non-trivial dead zone
        let mut adversary = Rng64::seeded(seed);
        let answers = repair::honest_answers(v, eps, truth, |_| adversary.bernoulli(0.5));
        let mut rng = Rng64::seeded(seed ^ 0xABCD);
        let rec = repair::reconstruct(v, eps, &answers, &mut rng);
        if let Some(rec) = rec {
            let dist = (rec ^ truth).count_ones() as usize;
            prop_assert!(dist <= repair::hamming_bound(v, eps),
                "distance {} > bound {}", dist, repair::hamming_bound(v, eps));
        }
    }

    /// SUBSAMPLE size is independent of n and monotone in 1/ε.
    #[test]
    fn subsample_size_invariants(seed in any::<u64>()) {
        let mut rng = Rng64::seeded(seed);
        let db1 = generators::uniform(500, 16, 0.3, &mut rng);
        let db2 = generators::uniform(5_000, 16, 0.3, &mut rng);
        let p1 = SketchParams::new(2, 0.1, 0.1);
        let p2 = SketchParams::new(2, 0.05, 0.1);
        let s11 = Subsample::build(&db1, &p1, Guarantee::ForEachEstimator, &mut rng);
        let s21 = Subsample::build(&db2, &p1, Guarantee::ForEachEstimator, &mut rng);
        let s12 = Subsample::build(&db1, &p2, Guarantee::ForEachEstimator, &mut rng);
        prop_assert_eq!(s11.size_bits(), s21.size_bits());
        prop_assert!(s12.size_bits() > s11.size_bits());
    }

    /// Itemset mask layout agrees with Database::row_contains for random
    /// itemsets.
    #[test]
    fn itemset_mask_consistency(
        seed in any::<u64>(),
        raw_items in proptest::collection::vec(0u32..70, 1..5),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(30, 70, 0.6, &mut rng);
        let t = Itemset::new(raw_items);
        let mask = db.mask_of(&t);
        for r in 0..db.rows() {
            let direct = t.items().iter().all(|&c| db.get(r, c as usize));
            prop_assert_eq!(db.matrix().row_contains_mask(r, &mask), direct);
        }
        prop_assert_eq!(db.support_mask(&mask), db.support(&t));
    }

    /// RELEASE-ANSWERS estimator quantization error stays within ε for
    /// arbitrary databases.
    #[test]
    fn release_answers_quantization(seed in any::<u64>()) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(37, 8, 0.5, &mut rng);
        let eps = 0.08;
        let sk = ReleaseAnswersEstimator::build(&db, 2, eps);
        for comb in combin::Combinations::new(8, 2) {
            let t = Itemset::new(comb);
            prop_assert!((sk.estimate(&t) - db.frequency(&t)).abs() <= eps + 1e-12);
        }
    }
}

#[test]
fn empty_database_edge_cases() {
    let db = Database::zeros(0, 10);
    assert_eq!(db.frequency(&Itemset::singleton(0)), 0.0);
    let bytes = serialize::to_bytes(&db);
    assert_eq!(serialize::from_bytes(&bytes).unwrap(), db);
}
