//! Streaming ingestion is an execution strategy, never an approximation.
//!
//! DESIGN.md §9's fold-and-merge contract, property-tested (fixed case
//! count and seed, like every suite here): for all four streaming-enabled
//! sketches — `Subsample`, `ReleaseDb`, `CountMinSketch`, `CountSketch` —
//! a one-shot build, the same rows streamed through a builder in arbitrary
//! batches, and partial builds merged back together are **bit-identical**;
//! merging is associative everywhere and commutative exactly where the
//! docs promise it (counter-wise merges); and `Database::append_rows`
//! followed by a batched query equals rebuild-from-scratch followed by the
//! same query at every thread count 1–4 (the §7/§8 answer contracts
//! survive in-place cache maintenance).

use itemset_sketches::core::streaming::{fold_database, MergeError};
use itemset_sketches::prelude::*;
use itemset_sketches::streaming::{
    CountMinFold, CountMinFoldParams, CountSketchFold, CountSketchFoldParams,
};
use proptest::prelude::*;

/// The rows of a database as itemsets, the builders' input representation.
fn rows_of(db: &Database) -> Vec<Itemset> {
    (0..db.rows()).map(|r| db.row_itemset(r)).collect()
}

/// Streams `rows` through a fresh partial build starting at `offset`.
fn partial<B: StreamingBuild>(
    dims: usize,
    seed: u64,
    params: &B::Params,
    offset: usize,
    rows: &[Itemset],
) -> B {
    let mut b = B::begin_at(dims, seed, params, offset as u64);
    b.observe_rows(rows);
    b
}

/// A random query log over `d` attributes with cardinalities 0..=4.
fn random_queries(d: usize, count: usize, rng: &mut Rng64) -> Vec<Itemset> {
    (0..count)
        .map(|_| {
            let k = rng.below(5).min(d);
            (0..k).map(|_| rng.below(d.max(1)) as u32).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(24, 0x57_3A))]

    /// Subsample: one-shot == streamed == merged-from-partials ==
    /// sharded-at-every-thread-count, and merge is associative across an
    /// arbitrary 3-way split of the rows.
    #[test]
    fn subsample_streamed_merged_and_sharded_builds_are_bit_identical(
        n in 1usize..500,
        d in 1usize..32,
        s in 1usize..60,
        seed in any::<u64>(),
        cut_a in 0usize..500,
        cut_b in 0usize..500,
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.35, &mut rng);
        let rows = rows_of(&db);
        let (i, j) = (cut_a % (n + 1), cut_b % (n + 1));
        let (i, j) = (i.min(j), i.max(j));
        let params = SubsampleParams { sample_rows: s, epsilon: 0.1 };
        let one_shot = Subsample::with_sample_count_seeded(&db, s, 0.1, seed);

        // Streamed in three batches through one builder.
        let mut streamed = SubsampleBuilder::begin(d, seed, &params);
        streamed.observe_rows(&rows[..i]);
        streamed.observe_rows(&rows[i..j]);
        streamed.observe_rows(&rows[j..]);
        prop_assert_eq!(streamed.finish().sample(), one_shot.sample());

        // Merged partials, both associations: ((a·b)·c) and (a·(b·c)).
        let build = |range: std::ops::Range<usize>| {
            partial::<SubsampleBuilder>(d, seed, &params, range.start, &rows[range])
        };
        let (mut left, mid, right) = (build(0..i), build(i..j), build(j..n));
        left.merge(mid).expect("adjacent partials merge");
        left.merge(right).expect("adjacent partials merge");
        prop_assert_eq!(left.finish().sample(), one_shot.sample());

        let (mut a, mut b, c) = (build(0..i), build(i..j), build(j..n));
        b.merge(c).expect("adjacent partials merge");
        a.merge(b).expect("merge is associative");
        prop_assert_eq!(a.finish().sample(), one_shot.sample());

        // Sharded build at thread counts 1-4.
        for threads in 1usize..=4 {
            let sharded = Subsample::with_sample_count_sharded(&db, s, 0.1, seed, threads);
            prop_assert_eq!(sharded.sample(), one_shot.sample(), "threads={}", threads);
        }
    }

    /// ReleaseDb: builder folds, builder merges, and sketch-level merges
    /// all reproduce the one-shot build; answers agree on a query log.
    #[test]
    fn release_db_streamed_and_merged_builds_are_bit_identical(
        n in 0usize..300,
        d in 1usize..24,
        cut in 0usize..300,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.4, &mut rng);
        let rows = rows_of(&db);
        let i = cut % (n + 1);
        let one_shot = ReleaseDb::build(&db, 0.2);

        let streamed = fold_database::<ReleaseDbBuilder>(&db, 0, &0.2);
        prop_assert_eq!(streamed.database(), one_shot.database());

        let mut a = partial::<ReleaseDbBuilder>(d, 0, &0.2, 0, &rows[..i]);
        let b = partial::<ReleaseDbBuilder>(d, 0, &0.2, i, &rows[i..]);
        a.merge(b).expect("adjacent partials merge");
        let merged = a.finish();
        prop_assert_eq!(merged.database(), one_shot.database());

        // Sketch-level merge over a warm head sketch (append fast path).
        let head = Database::from_fn(i, d, |r, c| db.get(r, c));
        let tail = Database::from_fn(n - i, d, |r, c| db.get(i + r, c));
        let mut sketch = ReleaseDb::build(&head, 0.2);
        let _ = sketch.database().columns();
        sketch.merge(ReleaseDb::build(&tail, 0.2)).expect("compatible sketches merge");
        prop_assert_eq!(sketch.database(), one_shot.database());
        let queries = random_queries(d, 10, &mut rng);
        prop_assert_eq!(sketch.estimate_batch(&queries), one_shot.estimate_batch(&queries));
    }

    /// Count-Min and Count-Sketch row folds: streamed == one-shot, and
    /// merging commutes (the promise counter-wise merges make).
    #[test]
    fn counter_folds_merge_commutatively_to_the_one_pass_sketch(
        n in 0usize..250,
        d in 1usize..16,
        cut in 0usize..250,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.45, &mut rng);
        let rows = rows_of(&db);
        let i = cut % (n + 1);
        let k = 1 + (seed % 3) as usize;

        let cm_params = CountMinFoldParams { k, width: 32, depth: 3, conservative: false };
        let mut cm_one = CountMinFold::begin(d, seed, &cm_params);
        cm_one.observe_rows(&rows);
        let cm_one = cm_one.finish();
        let a = partial::<CountMinFold>(d, seed, &cm_params, 0, &rows[..i]);
        let b = partial::<CountMinFold>(d, seed, &cm_params, i, &rows[i..]);
        let (mut ab, mut ba) = (a.clone(), b.clone());
        ab.merge(b).expect("same-shape folds merge");
        ba.merge(a).expect("counter merge commutes");
        prop_assert_eq!(&ab.finish(), &cm_one);
        prop_assert_eq!(&ba.finish(), &cm_one, "Count-Min merge must be commutative");

        let cs_params = CountSketchFoldParams { k, width: 32, depth: 3 };
        let mut cs_one = CountSketchFold::begin(d, seed, &cs_params);
        cs_one.observe_rows(&rows);
        let cs_one = cs_one.finish();
        let ca = partial::<CountSketchFold>(d, seed, &cs_params, 0, &rows[..i]);
        let cb = partial::<CountSketchFold>(d, seed, &cs_params, i, &rows[i..]);
        let (mut cab, mut cba) = (ca.clone(), cb.clone());
        cab.merge(cb).expect("same-shape folds merge");
        cba.merge(ca).expect("counter merge commutes");
        prop_assert_eq!(&cab.finish(), &cs_one);
        prop_assert_eq!(&cba.finish(), &cs_one, "Count-Sketch merge must be commutative");
    }

    /// RELEASE-ANSWERS builders (the mergeable face of the offline
    /// sketches): merged partials finish to the one-shot answers, in both
    /// merge orders.
    #[test]
    fn release_answers_builders_merge_to_the_one_shot_answers(
        n in 0usize..200,
        d in 2usize..10,
        cut in 0usize..200,
        seed in any::<u64>(),
    ) {
        use itemset_sketches::core::{
            ReleaseAnswersEstimatorBuilder, ReleaseAnswersIndicatorBuilder, ReleaseAnswersParams,
        };
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.5, &mut rng);
        let rows = rows_of(&db);
        let i = cut % (n + 1);
        let k = 1 + (seed % 2) as usize;
        let params = ReleaseAnswersParams { k, epsilon: 0.15 };

        let ind_one = ReleaseAnswersIndicator::build(&db, k, 0.15);
        let a = partial::<ReleaseAnswersIndicatorBuilder>(d, 0, &params, 0, &rows[..i]);
        let b = partial::<ReleaseAnswersIndicatorBuilder>(d, 0, &params, i, &rows[i..]);
        let (mut ab, mut ba) = (a.clone(), b.clone());
        ab.merge(b).expect("same-shape partials merge");
        ba.merge(a).expect("support merge commutes");
        prop_assert_eq!(&ab.finish(), &ind_one);
        prop_assert_eq!(&ba.finish(), &ind_one, "support merge must be commutative");

        let est_one = ReleaseAnswersEstimator::build(&db, k, 0.15);
        let mut ea = partial::<ReleaseAnswersEstimatorBuilder>(d, 0, &params, 0, &rows[..i]);
        let eb = partial::<ReleaseAnswersEstimatorBuilder>(d, 0, &params, i, &rows[i..]);
        ea.merge(eb).expect("same-shape partials merge");
        prop_assert_eq!(&ea.finish(), &est_one);
    }

    /// Append-then-query equals rebuild-then-query at every thread count
    /// 1-4: in-place cache maintenance serves the same answers as a cold
    /// transpose, through both the serial and sharded engines.
    #[test]
    fn append_then_query_equals_rebuild_then_query(
        n in 0usize..300,
        d in 1usize..24,
        batches in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.35, &mut rng);
        let rows = rows_of(&db);
        let queries = random_queries(d, 12, &mut rng);

        let mut incremental = Database::zeros(0, d);
        // Warm both views so the appends below exercise in-place
        // maintenance rather than lazy rebuilds.
        let _ = incremental.columns();
        let _ = incremental.sharded_columns(2);
        let chunk = n.div_ceil(batches).max(1);
        for batch in rows.chunks(chunk) {
            incremental.append_rows(batch);
            // Query between batches too: the interleaving is the workload
            // the fast path exists for.
            let rebuilt = Database::from_matrix(incremental.matrix().clone());
            for threads in 1usize..=4 {
                prop_assert_eq!(
                    incremental.support_batch_with_threads(&queries, threads),
                    rebuilt.support_batch_with_threads(&queries, threads),
                    "supports diverged at {} threads after {} rows",
                    threads,
                    incremental.rows()
                );
                prop_assert_eq!(
                    incremental.frequencies_with_threads(&queries, threads),
                    rebuilt.frequencies_with_threads(&queries, threads),
                    "frequencies diverged at {} threads after {} rows",
                    threads,
                    incremental.rows()
                );
            }
        }
        prop_assert_eq!(&incremental, &db);
    }
}

/// Refusals are part of the contract: non-contiguous Subsample partials,
/// mismatched shapes, and conservative Count-Min all error instead of
/// silently building a different sketch.
#[test]
fn incompatible_merges_are_refused() {
    let params = SubsampleParams { sample_rows: 4, epsilon: 0.1 };
    let mut a = SubsampleBuilder::begin(4, 9, &params);
    a.observe_row(&Itemset::singleton(1));
    let gap = SubsampleBuilder::begin_at(4, 9, &params, 3);
    assert_eq!(a.merge(gap).unwrap_err(), MergeError::NonContiguous { expected: 1, got: 3 });

    let mut x = ReleaseDb::build(&Database::zeros(2, 3), 0.2);
    let wider = ReleaseDb::build(&Database::zeros(2, 4), 0.2);
    assert!(matches!(x.merge(wider), Err(MergeError::Incompatible(_))));

    use itemset_sketches::streaming::CountMinSketch;
    let mut cons = CountMinSketch::<u64>::new(8, 2, true, 1);
    let cons2 = CountMinSketch::<u64>::new(8, 2, true, 1);
    assert!(matches!(cons.merge(cons2), Err(MergeError::Unmergeable(_))));
    let mut plain = CountMinSketch::<u64>::new(8, 2, false, 1);
    let reseeded = CountMinSketch::<u64>::new(8, 2, false, 2);
    assert!(matches!(plain.merge(reseeded), Err(MergeError::Incompatible(_))));
}
