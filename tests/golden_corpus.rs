//! The pinned golden corpus: old snapshot bytes stay decodable forever.
//!
//! `tests/golden/` commits one encoded frame per snapshot kind at body
//! version 1 (plus a `ReleaseDb` v2 file, the first kind with two
//! versions). Every file was produced by a fixed, seeded recipe that this
//! suite re-runs; each test decodes the *committed bytes* and asserts the
//! result is `==` to the recipe's sketch and answers queries identically
//! to recomputed ground truth. The contract pinned here is **decode
//! compatibility**: a frame once written must decode, byte-for-byte as
//! committed, on every future build. The corpus deliberately does *not*
//! assert that re-encoding reproduces the files — encoders move forward
//! with version bumps (`ReleaseDb` v1 → v2 in this tree); decoders never
//! drop a version.
//!
//! Regenerating (only when *adding* a kind or version — existing files
//! must never be rewritten): `GOLDEN_REGEN=1 cargo test --test
//! golden_corpus`. A rewrite that changes committed bytes is a decoder
//! break by definition and will fail CI's migration leg.

use itemset_sketches::prelude::*;
use itemset_sketches::streaming::{CountMinSketch, CountSketch, StreamCounter};
use std::path::{Path, PathBuf};

/// One seed for the whole corpus; recipes derive from it deterministically.
const GOLDEN_SEED: u64 = 0x601D;
const GOLDEN_DIMS: usize = 40;
const GOLDEN_ROWS: usize = 60;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_db() -> Database {
    let mut rng = Rng64::seeded(GOLDEN_SEED);
    generators::uniform(GOLDEN_ROWS, GOLDEN_DIMS, 0.15, &mut rng)
}

/// Deterministic mixed-cardinality query log over the corpus database.
fn golden_queries() -> Vec<Itemset> {
    let mut rng = Rng64::seeded(GOLDEN_SEED ^ 0xF00D);
    (0..64)
        .map(|_| {
            let k = rng.below(4);
            let mut items: Vec<u32> = (0..k).map(|_| rng.below(GOLDEN_DIMS) as u32).collect();
            items.sort_unstable();
            items.dedup();
            Itemset::new(items)
        })
        .collect()
}

/// Loads a corpus file, or (re)writes it first under `GOLDEN_REGEN=1`.
fn golden_bytes(name: &str, recipe_bytes: &[u8]) -> Vec<u8> {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, recipe_bytes).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nthe golden corpus is a committed tier-1 artifact; \
             regenerate a missing file with GOLDEN_REGEN=1 cargo test --test golden_corpus",
            path.display()
        )
    })
}

fn frame_version(bytes: &[u8]) -> u16 {
    u16::from_le_bytes([bytes[6], bytes[7]])
}

#[test]
fn golden_subsample_v1_decodes_and_answers() {
    let recipe = Subsample::with_sample_count_seeded(&golden_db(), 16, 0.1, GOLDEN_SEED ^ 0x5A);
    let bytes = golden_bytes("subsample_v1.bin", &recipe.snapshot_bytes());
    assert_eq!(frame_version(&bytes), 1);
    let decoded = Subsample::from_snapshot(&bytes).expect("v1 Subsample decodes forever");
    assert_eq!(decoded, recipe);
    // Answers equal truth recomputed over the recipe's own sample rows.
    let sample = recipe.sample();
    for q in &golden_queries() {
        assert_eq!(decoded.estimate(q).to_bits(), sample.frequency(q).to_bits());
    }
}

#[test]
fn golden_release_db_v1_decodes_and_answers_exactly() {
    let db = golden_db();
    let recipe = ReleaseDb::build(&db, 0.1);
    let bytes = golden_bytes("release_db_v1.bin", &recipe.snapshot_bytes_v1());
    assert_eq!(frame_version(&bytes), 1, "the v1 file must stay a v1 file");
    let decoded = ReleaseDb::from_snapshot(&bytes).expect("v1 ReleaseDb decodes forever");
    assert_eq!(decoded, recipe);
    for q in &golden_queries() {
        assert_eq!(decoded.estimate(q).to_bits(), db.frequency(q).to_bits(), "{q:?}");
    }
}

#[test]
fn golden_release_db_v2_decodes_and_answers_exactly() {
    let db = golden_db();
    let recipe = ReleaseDb::build(&db, 0.1);
    let bytes = golden_bytes("release_db_v2.bin", &recipe.snapshot_bytes());
    assert_eq!(frame_version(&bytes), 2);
    let decoded = ReleaseDb::from_snapshot(&bytes).expect("v2 ReleaseDb decodes");
    assert_eq!(decoded, recipe);
    for q in &golden_queries() {
        assert_eq!(decoded.estimate(q).to_bits(), db.frequency(q).to_bits(), "{q:?}");
    }
    // The two committed layouts are one sketch: same database, same ε.
    let v1 =
        ReleaseDb::from_snapshot(&golden_bytes("release_db_v1.bin", &recipe.snapshot_bytes_v1()))
            .expect("v1");
    assert_eq!(v1, decoded);
}

#[test]
fn golden_answers_stores_decode_and_answer() {
    let db = golden_db();
    let k = 2;
    let indicator = ReleaseAnswersIndicator::build(&db, k, 0.1);
    let bytes = golden_bytes("answers_indicator_v1.bin", &indicator.snapshot_bytes());
    assert_eq!(frame_version(&bytes), 1);
    let decoded = ReleaseAnswersIndicator::from_snapshot(&bytes).expect("v1 RAI decodes");
    assert_eq!(decoded, indicator);
    let estimator = ReleaseAnswersEstimator::build(&db, k, 0.1);
    let bytes = golden_bytes("answers_estimator_v1.bin", &estimator.snapshot_bytes());
    assert_eq!(frame_version(&bytes), 1);
    let est_decoded = ReleaseAnswersEstimator::from_snapshot(&bytes).expect("v1 RAE decodes");
    assert_eq!(est_decoded, estimator);
    // k-itemset answers against recomputed exact frequencies: the
    // indicator uses the exact threshold rule; the estimator is within
    // its quantization error and identical to the freshly built store.
    for q in golden_queries().iter().filter(|q| q.len() == k) {
        let truth = db.frequency(q);
        assert_eq!(decoded.is_frequent(q), truth >= 0.1, "{q:?}");
        let est = est_decoded.estimate(q);
        assert!((est - truth).abs() <= 0.1, "{q:?}: {est} vs {truth}");
        assert_eq!(est.to_bits(), estimator.estimate(q).to_bits());
    }
}

/// The deterministic update stream both counter recipes consume.
fn golden_stream() -> impl Iterator<Item = u64> {
    (0..300u64).map(|i| (i * i) % 23)
}

#[test]
fn golden_counter_sketches_decode_and_answer() {
    let mut cm: CountMinSketch<u64> = CountMinSketch::new(64, 4, false, GOLDEN_SEED);
    let mut cs: CountSketch<u64> = CountSketch::new(64, 5, GOLDEN_SEED ^ 0xC5);
    for item in golden_stream() {
        cm.update(item);
        cs.update(item);
    }
    let bytes = golden_bytes("count_min_v1.bin", &cm.snapshot_bytes());
    assert_eq!(frame_version(&bytes), 1);
    let cm_decoded: CountMinSketch<u64> =
        CountMinSketch::from_snapshot(&bytes).expect("v1 Count-Min decodes");
    assert_eq!(cm_decoded, cm);
    let bytes = golden_bytes("count_sketch_v1.bin", &cs.snapshot_bytes());
    assert_eq!(frame_version(&bytes), 1);
    let cs_decoded: CountSketch<u64> =
        CountSketch::from_snapshot(&bytes).expect("v1 Count-Sketch decodes");
    assert_eq!(cs_decoded, cs);
    // Estimates over the whole key space equal the recipe's — and the
    // Count-Min ones dominate the recomputed exact counts (never under).
    let mut truth = std::collections::HashMap::new();
    for item in golden_stream() {
        *truth.entry(item).or_insert(0u64) += 1;
    }
    for key in 0..23u64 {
        assert_eq!(cm_decoded.estimate(&key), cm.estimate(&key));
        assert_eq!(cs_decoded.estimate(&key), cs.estimate(&key));
        assert!(cm_decoded.estimate(&key) >= truth.get(&key).copied().unwrap_or(0));
    }
}

#[test]
fn golden_subsample_builder_v1_resumes_identically() {
    let db = golden_db();
    let params = SubsampleParams { sample_rows: 16, epsilon: 0.1 };
    let observed = 25usize;
    let mut recipe = SubsampleBuilder::begin(GOLDEN_DIMS, GOLDEN_SEED ^ 0xB1, &params);
    for r in 0..observed {
        recipe.observe_row(&db.row_itemset(r));
    }
    let bytes = golden_bytes("subsample_builder_v1.bin", &recipe.snapshot_bytes());
    assert_eq!(frame_version(&bytes), 1);
    let mut decoded = SubsampleBuilder::from_snapshot(&bytes).expect("v1 builder decodes");
    assert_eq!(decoded, recipe);
    // The decoded partial resumes the stream bit-identically to the
    // builder that never left memory — the §9-meets-§10 contract, held
    // against bytes frozen in the repo rather than freshly encoded ones.
    for r in observed..db.rows() {
        decoded.observe_row(&db.row_itemset(r));
        recipe.observe_row(&db.row_itemset(r));
    }
    assert_eq!(decoded.finish(), recipe.finish());
}

/// The corpus itself is gated: all eight files must be committed, each a
/// single well-formed frame of the kind and version its name claims.
#[test]
fn golden_corpus_is_complete() {
    let expected: [(&str, u16, u16); 8] = [
        ("subsample_v1.bin", 1, 1),
        ("release_db_v1.bin", 2, 1),
        ("release_db_v2.bin", 2, 2),
        ("answers_indicator_v1.bin", 3, 1),
        ("answers_estimator_v1.bin", 4, 1),
        ("count_min_v1.bin", 5, 1),
        ("count_sketch_v1.bin", 6, 1),
        ("subsample_builder_v1.bin", 7, 1),
    ];
    for (name, kind, version) in expected {
        let path = golden_dir().join(name);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (corpus file must be committed)", path.display()));
        let info = itemset_sketches::database::codec::peek_frame(&bytes)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!((info.kind, info.version), (kind, version), "{name}");
        assert_eq!(info.frame_len, bytes.len(), "{name}: exactly one frame per file");
    }
}
