//! The parallel execution layer is bit-identical to the serial one.
//!
//! DESIGN.md §8's determinism contract: the sharded columnar engine, the
//! thread-knobbed sketches, and the threaded miners are *execution
//! strategies*, never approximations — at every thread count they must
//! return exactly the serial answers (same integers, same `f64` bits, same
//! output order). These property tests (fixed case count and seed, like
//! every suite here) drive thread counts 1–8 and adversarial row counts
//! (0, 1, 63, 64, 65, and non-multiples of the shard size, so shard-tail
//! words are exercised).
//!
//! The sketch and miner property tests build their threaded side at
//! `env_threads()` (the `IFS_THREADS` override, default 1) plus one fixed
//! 2-thread leg, so CI's two runs — `IFS_THREADS=1` and `IFS_THREADS=4` —
//! genuinely exercise the serial and 4-worker configurations of every
//! sketch and miner, and the contract is enforced on every push.

use itemset_sketches::database::{ColumnStore, Itemset, ShardedColumnStore};
use itemset_sketches::prelude::*;
use itemset_sketches::util::threads::env_threads;
use proptest::prelude::*;

/// A random query log over `d` attributes: cardinalities 0..=4, duplicates
/// allowed (repeated queries exercise scratch reuse).
fn random_queries(d: usize, count: usize, rng: &mut Rng64) -> Vec<Itemset> {
    (0..count)
        .map(|_| {
            let k = rng.below(5).min(d);
            (0..k).map(|_| rng.below(d.max(1)) as u32).collect()
        })
        .collect()
}

/// Word-boundary-adversarial row counts: empty, single row, one under/at/
/// over a tid word, and values that leave ragged tail shards for every
/// shard size used below.
const ADVERSARIAL_ROWS: [usize; 9] = [0, 1, 63, 64, 65, 127, 129, 200, 321];

#[test]
fn sharded_store_matches_serial_on_adversarial_shapes() {
    let mut rng = Rng64::seeded(0x5AD0);
    for n in ADVERSARIAL_ROWS {
        for d in [1usize, 7, 64, 65] {
            let db = generators::uniform(n, d, 0.4, &mut rng);
            let serial = ColumnStore::build(db.matrix());
            let queries = random_queries(d, 20, &mut rng);
            for shard_rows in [64usize, 128, 256] {
                for threads in 1..=8usize {
                    let sharded =
                        ShardedColumnStore::build_with_shard_rows(db.matrix(), shard_rows, threads);
                    let sup = sharded.support_batch(&queries, threads);
                    let freq = sharded.frequency_batch(&queries, threads);
                    for (i, t) in queries.iter().enumerate() {
                        assert_eq!(
                            sup[i],
                            serial.support(t),
                            "support n={n} d={d} sr={shard_rows} threads={threads} {t}"
                        );
                        assert_eq!(
                            freq[i],
                            serial.frequency(t),
                            "frequency n={n} d={d} sr={shard_rows} threads={threads} {t}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(32, 0x5A_8D))]

    /// Arbitrary shapes: sharded supports/frequencies equal the row-major
    /// database and serial columnar answers at every thread count.
    #[test]
    fn sharded_matches_serial_on_random_shapes(
        n in 0usize..400,
        d in 0usize..96,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.35, &mut rng);
        let queries = random_queries(d, 15, &mut rng);
        let serial_sup = db.support_batch(&queries);
        let serial_freq = db.frequencies(&queries);
        for threads in [1usize, 2, 3, 5, 8] {
            let sup = db.support_batch_with_threads(&queries, threads);
            let freq = db.frequencies_with_threads(&queries, threads);
            prop_assert_eq!(&sup, &serial_sup, "supports diverged at {} threads", threads);
            prop_assert_eq!(&freq, &serial_freq, "frequencies diverged at {} threads", threads);
        }
    }

    /// Sketches with the thread knob: batched answers are bit-identical to
    /// the serial sketch query by query. The knob value under test includes
    /// the CI-driven `IFS_THREADS`.
    #[test]
    fn sketches_are_thread_count_invariant(
        n in 1usize..200,
        d in 1usize..48,
        s in 1usize..100,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.45, &mut rng);
        let queries = random_queries(d, 15, &mut rng);
        let sub_serial = Subsample::with_sample_count(&db, s, 0.1, &mut Rng64::seeded(seed ^ 1));
        let rel_serial = ReleaseDb::build(&db, 0.2);
        // env_threads() is the CI-driven knob (IFS_THREADS=1 and =4 legs);
        // the fixed 2-thread leg keeps a parallel path exercised even in a
        // plain serial `cargo test` run.
        for threads in [2usize, env_threads()] {
            let sub = Subsample::with_sample_count(&db, s, 0.1, &mut Rng64::seeded(seed ^ 1))
                .with_threads(threads);
            prop_assert_eq!(
                sub.estimate_batch(&queries),
                sub_serial.estimate_batch(&queries),
                "Subsample estimates diverged at {} threads", threads
            );
            prop_assert_eq!(
                sub.is_frequent_batch(&queries),
                sub_serial.is_frequent_batch(&queries),
                "Subsample indicators diverged at {} threads", threads
            );
            let rel = ReleaseDb::build(&db, 0.2).with_threads(threads);
            prop_assert_eq!(
                rel.estimate_batch(&queries),
                rel_serial.estimate_batch(&queries),
                "ReleaseDb estimates diverged at {} threads", threads
            );
            let adapter = EstimatorAsIndicator::new(
                ReleaseDb::build(&db, 0.2), 0.2,
            ).with_threads(threads);
            let adapter_serial = EstimatorAsIndicator::new(rel_serial.clone(), 0.2);
            prop_assert_eq!(
                adapter.is_frequent_batch(&queries),
                adapter_serial.is_frequent_batch(&queries),
                "adapter diverged at {} threads", threads
            );
        }
    }

    /// Threaded miners return exactly the serial output — same itemsets,
    /// same frequency bits, same order (no sorting before comparison).
    #[test]
    fn miners_are_thread_count_invariant(
        n in 1usize..120,
        d in 1usize..14,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.4, &mut rng);
        let thresh = 0.2;
        let eclat_serial = itemset_sketches::mining::eclat::mine(&db, thresh, usize::MAX);
        let apriori_serial = itemset_sketches::mining::apriori::mine(&db, thresh, usize::MAX);
        for threads in [2usize, env_threads()] {
            let e = itemset_sketches::mining::eclat::mine_with_threads(
                &db, thresh, usize::MAX, threads,
            );
            prop_assert_eq!(&e, &eclat_serial, "eclat diverged at {} threads", threads);
            let a = itemset_sketches::mining::apriori::mine_with_threads(
                &db, thresh, usize::MAX, threads,
            );
            prop_assert_eq!(&a, &apriori_serial, "apriori diverged at {} threads", threads);
        }
    }
}
