//! Batched columnar queries are bit-identical to scalar queries.
//!
//! The columnar engine (DESIGN.md §7) is an execution strategy, not an
//! approximation: for every sketch and for the database itself, the batched
//! APIs must return *exactly* the scalar answers — same `f64` bits, same
//! booleans — on arbitrary databases and query logs. These property tests
//! (fixed case count and seed, like every suite here) are the proof the
//! acceptance criterion asks for.

use itemset_sketches::database::{ColumnStore, Itemset};
use itemset_sketches::prelude::*;
use proptest::prelude::*;

/// A random query log over `d` attributes: cardinalities 0..=4, duplicates
/// allowed (repeated queries exercise scratch reuse).
fn random_queries(d: usize, count: usize, rng: &mut Rng64) -> Vec<Itemset> {
    (0..count)
        .map(|_| {
            let k = rng.below(5).min(d);
            (0..k).map(|_| rng.below(d) as u32).collect()
        })
        .collect()
}

/// Exactly-`k` queries for the RELEASE-ANSWERS sketches, which only answer
/// `k`-itemsets.
fn random_k_queries(d: usize, k: usize, count: usize, rng: &mut Rng64) -> Vec<Itemset> {
    (0..count).map(|_| rng.distinct_sorted(d, k).iter().map(|&i| i as u32).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(48, 0xC0_1D))]

    /// ColumnStore supports/frequencies equal the row-major Database ones,
    /// and the batch APIs equal their own scalar loops.
    #[test]
    fn column_store_matches_row_major(
        n in 0usize..120,
        d in 0usize..80,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.4, &mut rng);
        let queries = random_queries(d, 25, &mut rng);
        let store = ColumnStore::build(db.matrix());
        let supports = store.support_batch(&queries);
        let freqs = db.frequencies(&queries);
        for (i, t) in queries.iter().enumerate() {
            prop_assert_eq!(supports[i], db.support(t), "support diverged on {}", t);
            prop_assert_eq!(freqs[i], db.frequency(t), "frequency diverged on {}", t);
        }
    }

    /// SUBSAMPLE: estimate_batch / is_frequent_batch ≡ the scalar methods.
    #[test]
    fn subsample_batch_equals_scalar(
        n in 1usize..150,
        d in 1usize..64,
        s in 1usize..80,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.5, &mut rng);
        let sketch = Subsample::with_sample_count(&db, s, 0.1, &mut rng);
        let queries = random_queries(d, 20, &mut rng);
        let est = sketch.estimate_batch(&queries);
        let ind = sketch.is_frequent_batch(&queries);
        for (i, t) in queries.iter().enumerate() {
            prop_assert_eq!(est[i], sketch.estimate(t), "estimate diverged on {}", t);
            prop_assert_eq!(ind[i], sketch.is_frequent(t), "indicator diverged on {}", t);
        }
    }

    /// RELEASE-DB: batched exact answers ≡ scalar exact answers (including
    /// the n = 0 database, where every frequency is 0).
    #[test]
    fn release_db_batch_equals_scalar(
        n in 0usize..120,
        d in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.35, &mut rng);
        let sketch = ReleaseDb::build(&db, 0.2);
        let queries = random_queries(d, 20, &mut rng);
        let est = sketch.estimate_batch(&queries);
        let ind = sketch.is_frequent_batch(&queries);
        for (i, t) in queries.iter().enumerate() {
            prop_assert_eq!(est[i], sketch.estimate(t), "estimate diverged on {}", t);
            prop_assert_eq!(ind[i], sketch.is_frequent(t), "indicator diverged on {}", t);
        }
    }

    /// The EstimatorAsIndicator adapter batches through the inner estimator;
    /// thresholding must agree with the scalar path query-by-query.
    #[test]
    fn adapter_batch_equals_scalar(
        n in 1usize..120,
        d in 1usize..48,
        s in 1usize..60,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.5, &mut rng);
        let inner = Subsample::with_sample_count(&db, s, 0.1, &mut rng);
        let adapter = EstimatorAsIndicator::new(inner, 0.1);
        let queries = random_queries(d, 20, &mut rng);
        let ind = adapter.is_frequent_batch(&queries);
        for (i, t) in queries.iter().enumerate() {
            prop_assert_eq!(ind[i], adapter.is_frequent(t), "adapter diverged on {}", t);
        }
    }

    /// RELEASE-ANSWERS (both variants) answer batches through the default
    /// trait implementations; they too must match their scalar methods.
    #[test]
    fn release_answers_batch_equals_scalar(
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let (d, k) = (12usize, 2usize);
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.4, &mut rng);
        let est_sketch = ReleaseAnswersEstimator::build(&db, k, 0.1);
        let ind_sketch = ReleaseAnswersIndicator::build(&db, k, 0.1);
        let queries = random_k_queries(d, k, 20, &mut rng);
        let est = est_sketch.estimate_batch(&queries);
        let ind = ind_sketch.is_frequent_batch(&queries);
        for (i, t) in queries.iter().enumerate() {
            prop_assert_eq!(est[i], est_sketch.estimate(t), "estimate diverged on {}", t);
            prop_assert_eq!(ind[i], ind_sketch.is_frequent(t), "indicator diverged on {}", t);
        }
    }

    /// Mining through batched oracles returns exactly what direct mining
    /// returns: apriori (batched columnar) ≡ eclat (shared tid-sets), and
    /// the estimator-oracle miner on RELEASE-DB ≡ apriori on the database.
    #[test]
    fn batched_miners_agree(
        n in 1usize..80,
        d in 1usize..14,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = generators::uniform(n, d, 0.45, &mut rng);
        let thresh = 0.25;
        let mut a = itemset_sketches::mining::apriori::mine(&db, thresh, usize::MAX);
        let mut e = itemset_sketches::mining::eclat::mine(&db, thresh, usize::MAX);
        let sketch = ReleaseDb::build(&db, thresh);
        let mut o = itemset_sketches::mining::oracle::mine_with_estimator(
            &sketch, d, thresh, usize::MAX,
        );
        itemset_sketches::mining::sort_results(&mut a);
        itemset_sketches::mining::sort_results(&mut e);
        itemset_sketches::mining::sort_results(&mut o);
        prop_assert_eq!(&a, &o, "oracle mining diverged from apriori");
        prop_assert_eq!(a.len(), e.len());
        for (x, y) in a.iter().zip(&e) {
            prop_assert_eq!(&x.itemset, &y.itemset);
            prop_assert_eq!(x.frequency, y.frequency, "eclat frequency diverged on {}", &x.itemset);
        }
    }
}
