//! Snapshots are the sketch: encode → decode is identity, and size is
//! measured (DESIGN.md §10).
//!
//! Property-tested (fixed case count and seed, like every suite here), for
//! every snapshot-backed codec — `Subsample`, `SubsampleBuilder`,
//! `ReleaseDb`, `ReleaseAnswersIndicator`, `ReleaseAnswersEstimator`,
//! `CountMinSketch`, `CountSketch`:
//!
//! * **Round-trip** — `from_snapshot(snapshot_bytes())` compares `==` to
//!   the original and answers every query bit-identically, at thread
//!   counts 1, 2, and 4 where the sketch has a thread knob.
//! * **Measured size** — `size_bits()` equals the encoded length in bits.
//! * **Adversarial bytes never panic** — truncation at *every* prefix
//!   length, flipped magic, a future format version, a flipped body byte,
//!   trailing garbage, and cross-kind decoding each return the right
//!   `DecodeError` variant.
//! * **Resumable ingestion** — a `SubsampleBuilder` snapshotted mid-stream
//!   and decoded elsewhere keeps observing/merging/finishing
//!   bit-identically to the builder that never left memory (§9 meets §10).

use itemset_sketches::database::codec::DecodeError;
use itemset_sketches::prelude::*;
use itemset_sketches::streaming::{CountMinSketch, CountSketch, StreamCounter};
use proptest::prelude::*;

/// A random query log over `d` attributes with cardinalities 0..=4.
fn random_queries(d: usize, count: usize, rng: &mut Rng64) -> Vec<Itemset> {
    (0..count)
        .map(|_| {
            let k = rng.below(5).min(d);
            (0..k).map(|_| rng.below(d.max(1)) as u32).collect()
        })
        .collect()
}

/// The shared contract of every snapshot codec: round-trip `==` identity,
/// `size_bits == 8 · encoded length`, and a typed refusal (never a panic)
/// for each class of adversarial input.
fn assert_snapshot_contract<S>(original: &S)
where
    S: Snapshot + PartialEq + std::fmt::Debug,
{
    let bytes = original.snapshot_bytes();
    let decoded = S::from_snapshot(&bytes).expect("well-formed snapshot must decode");
    assert_eq!(&decoded, original, "decode(encode(sketch)) must be == the sketch");
    assert_eq!(
        original.snapshot_bits(),
        bytes.len() as u64 * 8,
        "snapshot_bits must be the encoded length"
    );

    // Truncation at every prefix length: always a typed error, never a
    // panic, and never a bogus success.
    for cut in 0..bytes.len() {
        assert!(S::from_snapshot(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
    }
    assert!(matches!(
        S::from_snapshot(&bytes[..2.min(bytes.len())]),
        Err(DecodeError::Truncated { .. })
    ));

    // Flipped magic.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(S::from_snapshot(&bad_magic), Err(DecodeError::BadMagic(_))));

    // A future format version refuses with version skew, not a checksum
    // complaint (the body layout of the future is unknowable).
    let mut future = bytes.clone();
    future[6..8].copy_from_slice(&(S::VERSION + 1).to_le_bytes());
    match S::from_snapshot(&future) {
        Err(DecodeError::UnsupportedVersion { got, supported, .. }) => {
            assert_eq!(got, S::VERSION + 1);
            assert_eq!(supported, S::VERSION);
        }
        other => panic!("future version must refuse with UnsupportedVersion, got {other:?}"),
    }

    // A flipped bit in the last body byte (headers intact) fails the
    // checksum.
    let mut corrupt = bytes.clone();
    let last_body = bytes.len() - 9;
    corrupt[last_body] ^= 0x40;
    assert!(matches!(S::from_snapshot(&corrupt), Err(DecodeError::ChecksumMismatch { .. })));

    // Trailing garbage is refused with the exact surplus.
    let mut long = bytes.clone();
    long.extend_from_slice(b"??");
    assert!(matches!(S::from_snapshot(&long), Err(DecodeError::TrailingBytes { extra: 2 })));
    // ... but the stream-decoding entry point leaves the tail for the
    // caller.
    let (streamed, consumed) = S::decode_from(&long).expect("frame itself is intact");
    assert_eq!(&streamed, original);
    assert_eq!(consumed, bytes.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(24, 0x5A95))]

    /// Subsample: snapshot contract, measured size, and query identity at
    /// every thread count.
    #[test]
    fn subsample_snapshot_roundtrips_and_serves_identically(
        n in 1usize..400,
        d in 1usize..48,
        s in 1usize..50,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = itemset_sketches::database::generators::uniform(n, d, 0.3, &mut rng);
        let sketch = Subsample::with_sample_count_seeded(&db, s, 0.1, seed);
        assert_snapshot_contract(&sketch);
        prop_assert_eq!(sketch.size_bits(), sketch.snapshot_bytes().len() as u64 * 8);

        let decoded = Subsample::from_snapshot(&sketch.snapshot_bytes()).expect("roundtrip");
        let queries = random_queries(d, 30, &mut rng);
        let reference = sketch.estimate_batch(&queries);
        for threads in [1usize, 2, 4] {
            let served = decoded.clone().with_threads(threads);
            prop_assert_eq!(&served.estimate_batch(&queries), &reference, "threads={}", threads);
            prop_assert_eq!(
                served.is_frequent_batch(&queries),
                sketch.is_frequent_batch(&queries),
                "threads={}", threads
            );
        }
    }

    /// ReleaseDb: snapshot contract and exact answers after reload.
    #[test]
    fn release_db_snapshot_roundtrips_and_serves_identically(
        n in 0usize..300,
        d in 1usize..48,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = itemset_sketches::database::generators::uniform(n, d, 0.25, &mut rng);
        let sketch = ReleaseDb::build(&db, 0.2);
        assert_snapshot_contract(&sketch);
        prop_assert_eq!(sketch.size_bits(), sketch.snapshot_bytes().len() as u64 * 8);

        let decoded = ReleaseDb::from_snapshot(&sketch.snapshot_bytes()).expect("roundtrip");
        let queries = random_queries(d, 30, &mut rng);
        prop_assert_eq!(decoded.estimate_batch(&queries), sketch.estimate_batch(&queries));
        prop_assert_eq!(
            decoded.clone().with_threads(4).is_frequent_batch(&queries),
            sketch.is_frequent_batch(&queries)
        );
    }

    /// Both RELEASE-ANSWERS variants: snapshot contract and identical
    /// stored answers over the *entire* query space.
    #[test]
    fn release_answers_snapshots_roundtrip_and_serve_identically(
        n in 1usize..150,
        d in 2usize..10,
        seed in any::<u64>(),
    ) {
        let k = 2usize;
        let mut rng = Rng64::seeded(seed);
        let db = itemset_sketches::database::generators::uniform(n, d, 0.4, &mut rng);

        let ind = ReleaseAnswersIndicator::build(&db, k, 0.15);
        assert_snapshot_contract(&ind);
        prop_assert_eq!(ind.size_bits(), ind.snapshot_bytes().len() as u64 * 8);
        let ind2 = ReleaseAnswersIndicator::from_snapshot(&ind.snapshot_bytes()).expect("rt");

        let est = ReleaseAnswersEstimator::build(&db, k, 0.07);
        assert_snapshot_contract(&est);
        prop_assert_eq!(est.size_bits(), est.snapshot_bytes().len() as u64 * 8);
        let est2 = ReleaseAnswersEstimator::from_snapshot(&est.snapshot_bytes()).expect("rt");

        for combo in itemset_sketches::util::combin::Combinations::new(d as u32, k as u32) {
            let t = Itemset::new(combo);
            prop_assert_eq!(ind2.is_frequent(&t), ind.is_frequent(&t), "indicator at {}", &t);
            prop_assert_eq!(
                est2.estimate(&t).to_bits(),
                est.estimate(&t).to_bits(),
                "estimator at {}", &t
            );
        }
    }

    /// Count-Min (plain and conservative) and Count-Sketch: snapshot
    /// contract and identical estimates after reload.
    #[test]
    fn stream_counter_snapshots_roundtrip_and_serve_identically(
        len in 0usize..2000,
        width in 1usize..128,
        depth in 1usize..6,
        conservative in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let stream: Vec<u32> = (0..len).map(|_| rng.below(200) as u32).collect();

        let mut cm = CountMinSketch::new(width, depth, conservative, seed);
        let mut cs = CountSketch::new(width, depth, seed ^ 1);
        for &x in &stream {
            cm.update(x);
            cs.update(x);
        }
        assert_snapshot_contract(&cm);
        assert_snapshot_contract(&cs);
        prop_assert_eq!(StreamCounter::size_bits(&cm), cm.snapshot_bytes().len() as u64 * 8);
        prop_assert_eq!(StreamCounter::size_bits(&cs), cs.snapshot_bytes().len() as u64 * 8);

        let cm2 = CountMinSketch::<u32>::from_snapshot(&cm.snapshot_bytes()).expect("rt");
        let cs2 = CountSketch::<u32>::from_snapshot(&cs.snapshot_bytes()).expect("rt");
        prop_assert_eq!(cm2.stream_len(), stream.len() as u64);
        for x in 0..210u32 {
            prop_assert_eq!(cm2.estimate(&x), cm.estimate(&x), "Count-Min at {}", x);
            prop_assert_eq!(cs2.signed_estimate(&x), cs.signed_estimate(&x), "Count-Sketch at {}", x);
        }
    }

    /// A partial SubsampleBuilder snapshotted mid-stream resumes
    /// bit-identically: decode, observe the remaining rows, finish — the
    /// sample equals the never-serialized one-shot build, and the decoded
    /// builder still merges later partials per §9.
    #[test]
    fn subsample_builder_snapshot_resumes_and_merges_bit_identically(
        n in 2usize..500,
        d in 1usize..32,
        s in 1usize..40,
        split_raw in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seeded(seed);
        let db = itemset_sketches::database::generators::uniform(n, d, 0.35, &mut rng);
        let split = 1 + (split_raw as usize) % (n - 1);
        let params = SubsampleParams { sample_rows: s, epsilon: 0.1 };
        let one_shot = Subsample::with_sample_count_seeded(&db, s, 0.1, seed);

        let mut head = SubsampleBuilder::begin(d, seed, &params);
        for r in 0..split {
            head.observe_row(&db.row_itemset(r));
        }
        assert_snapshot_contract(&head);

        // Resume-by-observing: the decoded builder sees the tail rows.
        let mut resumed =
            SubsampleBuilder::from_snapshot(&head.snapshot_bytes()).expect("roundtrip");
        prop_assert_eq!(&resumed, &head);
        for r in split..n {
            resumed.observe_row(&db.row_itemset(r));
        }
        prop_assert_eq!(resumed.finish().sample(), one_shot.sample(), "resumed build diverged");

        // Resume-by-merging: the decoded builder absorbs a tail partial
        // built elsewhere (also round-tripped through its own snapshot).
        let mut tail = SubsampleBuilder::begin_at(d, seed, &params, split as u64);
        for r in split..n {
            tail.observe_row(&db.row_itemset(r));
        }
        let tail = SubsampleBuilder::from_snapshot(&tail.snapshot_bytes()).expect("roundtrip");
        let mut merged =
            SubsampleBuilder::from_snapshot(&head.snapshot_bytes()).expect("roundtrip");
        merged.merge(tail).expect("contiguous partials merge");
        prop_assert_eq!(merged.finish().sample(), one_shot.sample(), "merged build diverged");
    }
}

/// Cross-kind decoding: bytes of one sketch type refuse to decode as
/// another, with both tags named — for every ordered pair in the registry
/// that can be confused (all seven kinds share one frame layout).
#[test]
fn snapshots_refuse_cross_kind_decoding() {
    let mut rng = Rng64::seeded(0xC1055);
    let db = itemset_sketches::database::generators::uniform(60, 8, 0.4, &mut rng);
    let sub = Subsample::with_sample_count_seeded(&db, 9, 0.1, 1).snapshot_bytes();
    let rdb = ReleaseDb::build(&db, 0.2).snapshot_bytes();
    let ind = ReleaseAnswersIndicator::build(&db, 2, 0.1).snapshot_bytes();
    let est = ReleaseAnswersEstimator::build(&db, 2, 0.1).snapshot_bytes();
    let cm = CountMinSketch::<u32>::new(16, 2, false, 3).snapshot_bytes();
    let cs = CountSketch::<u32>::new(16, 2, 3).snapshot_bytes();

    fn expect_wrong_kind<S: Snapshot + std::fmt::Debug>(bytes: &[u8]) {
        match S::from_snapshot(bytes) {
            Err(DecodeError::WrongKind { expected, got }) => {
                assert_eq!(expected, S::KIND);
                assert_ne!(got, S::KIND);
            }
            other => panic!("expected WrongKind decoding foreign bytes, got {other:?}"),
        }
    }

    expect_wrong_kind::<Subsample>(&rdb);
    expect_wrong_kind::<ReleaseDb>(&sub);
    expect_wrong_kind::<ReleaseAnswersIndicator>(&est);
    expect_wrong_kind::<ReleaseAnswersEstimator>(&ind);
    expect_wrong_kind::<CountMinSketch<u32>>(&cs);
    expect_wrong_kind::<CountSketch<u32>>(&cm);
    expect_wrong_kind::<SubsampleBuilder>(&sub);
}

/// Crafted headers that are well-framed (magic, kind, checksum all valid)
/// but declare impossible bodies: each must be a typed refusal — never a
/// panic, never a huge allocation attempt. Regressions for the decode
/// hardening pass.
#[test]
fn crafted_headers_refuse_without_panicking_or_allocating() {
    use itemset_sketches::database::codec::{encode_frame, Writer};

    // C(100, 50) overflows u64: the answer-shape validation must refuse,
    // not hit the trusted-path binomial panic.
    let mut body = Writer::new();
    body.varint(50); // k
    body.varint(100); // d
    body.varint(7); // count (arbitrary)
    let frame = encode_frame(ReleaseAnswersIndicator::KIND, 1, &body.into_bytes());
    assert!(matches!(ReleaseAnswersIndicator::from_snapshot(&frame), Err(DecodeError::Corrupt(_))));

    // A SubsampleBuilder offset in the last chunk of the u64 range has no
    // next chunk boundary: checked arithmetic must refuse instead of
    // wrapping into a bogus front capacity.
    let mut body = Writer::new();
    body.varint(4); // dims
    body.u64(1); // seed
    body.varint(2); // sample_rows
    body.f64_bits(0.1); // epsilon
    body.varint(u64::MAX); // offset
    body.varint(0); // rows_seen
    body.varint(0); // back_start
    body.varint(0); // front len
    body.varint(0); // back len
    body.u8(0); // slot 0 empty
    body.u8(0); // slot 1 empty
    let frame = encode_frame(SubsampleBuilder::KIND, 1, &body.into_bytes());
    assert!(matches!(SubsampleBuilder::from_snapshot(&frame), Err(DecodeError::Corrupt(_))));

    // A tiny Count-Min frame declaring depth 2^40 must report truncation
    // (the body cannot back the shape) before any table is reserved.
    let mut body = Writer::new();
    body.varint(4); // width
    body.varint(1 << 40); // depth
    body.u8(0); // conservative
    body.varint(0); // stream length
    let frame = encode_frame(CountMinSketch::<u32>::KIND, 1, &body.into_bytes());
    assert!(matches!(
        CountMinSketch::<u32>::from_snapshot(&frame),
        Err(DecodeError::Truncated { .. })
    ));

    // Same shape attack on Count-Sketch.
    let mut body = Writer::new();
    body.varint(1 << 40); // width
    body.varint(3); // depth
    body.varint(0); // stream length
    let frame = encode_frame(CountSketch::<u32>::KIND, 1, &body.into_bytes());
    assert!(matches!(
        CountSketch::<u32>::from_snapshot(&frame),
        Err(DecodeError::Truncated { .. })
    ));

    // An itemset whose second delta overflows u64 must refuse as corrupt,
    // not wrap into a value that dodges the range and ordering checks.
    // (Framed as a SubsampleBuilder with one buffered back row.)
    let mut body = Writer::new();
    body.varint(4); // dims
    body.u64(1); // seed
    body.varint(1); // sample_rows
    body.f64_bits(0.1); // epsilon
    body.varint(0); // offset
    body.varint(1); // rows_seen
    body.varint(0); // back_start
    body.varint(0); // front len
    body.varint(1); // back len: one row...
    body.varint(2); // ...with two items
    body.varint(1); // item 0 = 1
    body.varint(u64::MAX); // delta overflowing past u64::MAX
    body.u8(0); // slot empty
    let frame = encode_frame(SubsampleBuilder::KIND, 1, &body.into_bytes());
    assert!(matches!(SubsampleBuilder::from_snapshot(&frame), Err(DecodeError::Corrupt(_))));
}

/// The serving loop in one test: build sharded (§8/§9), snapshot, move the
/// bytes to another thread, decode, serve a query log — answers match the
/// builder process bit for bit. (`examples/snapshot_serving.rs` is the
/// narrated version of this.)
#[test]
fn snapshot_ships_across_threads_and_serves_identically() {
    let mut rng = Rng64::seeded(0x5E4F);
    let db = itemset_sketches::database::generators::uniform(5_000, 32, 0.2, &mut rng);
    let sketch = Subsample::with_sample_count_sharded(&db, 400, 0.05, 0xFACE, 4);
    let queries = random_queries(32, 200, &mut rng);
    let reference = sketch.estimate_batch(&queries);
    let bytes = sketch.snapshot_bytes();

    let served = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let served = Subsample::from_snapshot(&bytes).expect("serving tier decodes");
                served.estimate_batch(&queries)
            })
            .join()
            .expect("serving thread")
    });
    assert_eq!(served, reference, "served answers diverged from the build tier");
}
