//! Decoder-adversary suite for the sketch log (DESIGN.md §14).
//!
//! The log's recovery scan gets fed every hostile input we can construct —
//! torn tails at *every* byte boundary, bit flips in the header and in
//! record bodies, duplicate ids, interleaved kinds, merge runs that cannot
//! fold, and arbitrary garbage files. The contract under attack is always
//! the same: a typed [`StoreError`] or a clean truncation to a valid
//! prefix — never a panic, never silent acceptance of corrupt records,
//! and never modification of a file that is not a log.

use itemset_sketches::prelude::*;
use itemset_sketches::store::{LogRecord, LOG_HEADER_LEN, LOG_MAGIC};
use itemset_sketches::streaming::{CountMinSketch, StreamCounter};
use proptest::prelude::*;
use std::path::PathBuf;

/// A self-deleting scratch path, unique per test (parallel-safe) and
/// reused across proptest cases (each case overwrites the file).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        Scratch(std::env::temp_dir().join(format!("ifs-adv-{}-{tag}.log", std::process::id())))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn rdb_frame(rows: &[Vec<u32>]) -> Vec<u8> {
    ReleaseDb::build(&Database::from_rows(16, rows), 0.25).snapshot_bytes()
}

fn subsample_frame(seed: u64) -> Vec<u8> {
    let mut rng = Rng64::seeded(seed);
    let db = generators::uniform(12, 16, 0.3, &mut rng);
    Subsample::with_sample_count_seeded(&db, 4, 0.2, seed).snapshot_bytes()
}

fn count_min_frame(seed: u64) -> Vec<u8> {
    let mut cm: CountMinSketch<u64> = CountMinSketch::new(16, 2, false, seed);
    for i in 0..40u64 {
        cm.update(i % 7);
    }
    cm.snapshot_bytes()
}

/// A log interleaving kinds and ops: puts, a shadowing reload, and a
/// two-record merge run. The adversary tests mutate *these* bytes.
fn build_prey(path: &std::path::Path) -> (SketchLog, Vec<LogRecord>) {
    let mut log = SketchLog::create(path).expect("create");
    log.append(LogOp::Put, 0, &rdb_frame(&[vec![0, 1], vec![1]])).expect("append");
    log.append(LogOp::Put, 1, &subsample_frame(11)).expect("append");
    log.append(LogOp::Merge, 2, &rdb_frame(&[vec![2]])).expect("append");
    log.append(LogOp::Put, 0, &count_min_frame(5)).expect("append");
    log.append(LogOp::Merge, 2, &rdb_frame(&[vec![3, 4]])).expect("append");
    let records = log.records().expect("clean scan");
    (log, records)
}

/// Recovery must turn a tail cut at ANY byte boundary into a valid record
/// prefix — and reopening the recovered file must then scan cleanly.
#[test]
fn torn_tail_at_every_byte_recovers_a_valid_prefix() {
    let prey = Scratch::new("torn");
    let (_, originals) = build_prey(&prey.0);
    let bytes = std::fs::read(&prey.0).expect("read prey");
    let torn = Scratch::new("torn-cut");
    for cut in 0..=bytes.len() {
        std::fs::write(&torn.0, &bytes[..cut]).expect("write cut");
        let (log, report) = SketchLog::open(&torn.0)
            .unwrap_or_else(|e| panic!("cut at {cut}: open must recover, got {e}"));
        // A cut inside the header recovers to a fresh empty log (8 header
        // bytes); past it, recovery only ever shortens the file.
        assert!(report.valid_bytes <= (cut as u64).max(LOG_HEADER_LEN as u64), "cut at {cut}");
        let recovered = log.records().expect("recovered file scans cleanly");
        assert_eq!(recovered.len() as u64, report.records, "cut at {cut}");
        // The survivors are exactly a prefix of the original records.
        assert_eq!(recovered[..], originals[..recovered.len()], "cut at {cut}");
        // A record survives iff the cut is past its last byte; nothing
        // valid may be thrown away.
        let complete = originals.iter().filter(|r| r.offset + full_len(r) <= cut as u64).count();
        assert_eq!(recovered.len(), complete, "cut at {cut}");
        // Idempotent: reopening the recovered file is clean.
        let (_, again) = SketchLog::open(&torn.0).expect("reopen");
        assert!(again.clean(), "cut at {cut}: {again:?}");
    }
}

/// On-disk length of a record: op + id varint + len varint + frame + checksum.
fn full_len(r: &LogRecord) -> u64 {
    fn varint_len(mut v: u64) -> u64 {
        let mut n = 1;
        while v >= 0x80 {
            v >>= 7;
            n += 1;
        }
        n
    }
    1 + varint_len(r.id) + varint_len(r.frame.len() as u64) + r.frame.len() as u64 + 8
}

/// Merge runs that cannot fold surface a typed [`StoreError::Merge`]
/// naming the offending record's byte offset — never a panic, and never a
/// bogus materialization.
#[test]
fn unfoldable_merge_runs_are_typed_refusals() {
    // Cross-kind merge: ReleaseDb then Count-Min under one id.
    let scratch = Scratch::new("merge-kind");
    let mut log = SketchLog::create(&scratch.0).expect("create");
    log.append(LogOp::Merge, 9, &rdb_frame(&[vec![1]])).expect("append");
    let offending = log.len_bytes();
    log.append(LogOp::Merge, 9, &count_min_frame(3)).expect("append");
    match log.materialize() {
        Err(StoreError::Merge { offset, id: 9, source: MergeError::Incompatible(_) }) => {
            assert_eq!(offset, offending);
        }
        other => panic!("expected typed cross-kind refusal, got {other:?}"),
    }
    // Same-kind merge of an unmergeable finished store: Subsample.
    let scratch = Scratch::new("merge-unm");
    let mut log = SketchLog::create(&scratch.0).expect("create");
    log.append(LogOp::Merge, 4, &subsample_frame(21)).expect("append");
    log.append(LogOp::Merge, 4, &subsample_frame(22)).expect("append");
    match log.materialize() {
        Err(StoreError::Merge { id: 4, source: MergeError::Unmergeable(_), .. }) => {}
        other => panic!("expected typed unmergeable refusal, got {other:?}"),
    }
    // A single Merge (the run's initial value) is fine even for an
    // unmergeable kind — it is kept verbatim, like a sharded build's
    // first partial.
    let scratch = Scratch::new("merge-one");
    let mut log = SketchLog::create(&scratch.0).expect("create");
    let frame = subsample_frame(33);
    log.append(LogOp::Merge, 4, &frame).expect("append");
    assert_eq!(log.materialize().expect("single merge is verbatim")[&4], frame);
}

/// Duplicate ids across interleaved kinds: a `Put` shadows whatever came
/// before, including a finished merge run and a different kind entirely.
#[test]
fn duplicate_ids_and_interleaved_kinds_shadow_cleanly() {
    let scratch = Scratch::new("dup");
    let (log, _) = build_prey(&scratch.0);
    let live = log.materialize().expect("materialize");
    assert_eq!(live.len(), 3, "ids 0, 1, 2");
    // Id 0 was Put twice across kinds; the Count-Min reload wins verbatim.
    assert_eq!(live[&0], count_min_frame(5));
    assert_eq!(live[&1], subsample_frame(11));
    // Id 2's merge run folded two single-row ReleaseDbs (row concat).
    let folded = ReleaseDb::from_snapshot(&live[&2]).expect("decode fold");
    let mut expect = ReleaseDb::build(&Database::from_rows(16, &[vec![2]]), 0.25);
    expect.merge(ReleaseDb::build(&Database::from_rows(16, &[vec![3, 4]]), 0.25)).expect("merge");
    assert_eq!(folded, expect);
}

proptest! {
    // Fixed case count AND RNG seed, like every tier-1 proptest suite.
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0x570E_5EED))]

    /// A single bit flip anywhere in the file: recovery either keeps a
    /// record prefix that is byte-identical to the originals, or refuses
    /// the whole file with a typed header error. Never a panic.
    #[test]
    fn bit_flips_recover_a_prefix_or_refuse_typed(
        pos_raw in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let prey = Scratch::new("flip");
        let (_, originals) = build_prey(&prey.0);
        let mut bytes = std::fs::read(&prey.0).expect("read");
        let pos = pos_raw % bytes.len();
        bytes[pos] ^= 1 << bit;
        let flipped = Scratch::new("flip-mut");
        std::fs::write(&flipped.0, &bytes).expect("write");
        match SketchLog::open(&flipped.0) {
            Ok((log, report)) => {
                let recovered = log.records().expect("recovered file scans cleanly");
                prop_assert_eq!(&recovered[..], &originals[..recovered.len()]);
                // A flip inside record bytes must not survive recovery:
                // every retained record ends before the flipped byte (a
                // flip in the 8-byte header can leave all records intact).
                if pos >= LOG_HEADER_LEN {
                    prop_assert!(report.valid_bytes <= pos as u64);
                    prop_assert!(!report.clean());
                }
            }
            Err(StoreError::NotALog { .. } | StoreError::UnsupportedLogVersion { .. }) => {
                // Only a header flip may condemn the file outright.
                prop_assert!(pos < LOG_HEADER_LEN);
            }
            Err(e) => panic!("untyped refusal: {e}"),
        }
    }

    /// Arbitrary garbage offered as a log: refused as [`StoreError::NotALog`]
    /// (and left byte-for-byte untouched), unless it happens to start with
    /// the magic — then it must recover to a valid, rescannable log.
    #[test]
    fn garbage_files_are_refused_untouched_or_recovered(
        garbage in proptest::collection::vec(any::<u8>(), 0..200),
        with_magic in any::<bool>(),
    ) {
        let mut bytes = garbage;
        if with_magic {
            bytes.splice(0..0, LOG_MAGIC.to_le_bytes());
            bytes.splice(4..4, 1u16.to_le_bytes()); // log version 1
        }
        let scratch = Scratch::new("garbage");
        std::fs::write(&scratch.0, &bytes).expect("write");
        match SketchLog::open(&scratch.0) {
            Ok((log, _)) => {
                log.records().expect("recovered garbage scans cleanly");
            }
            Err(StoreError::NotALog { .. }) => {
                // With a full valid header prepended the file cannot be
                // condemned; a sub-header file may be (torn-header
                // detection demands an exact prefix, reserved zeros too).
                prop_assert!(!with_magic || bytes.len() < LOG_HEADER_LEN);
                // Refusal must not have modified the file.
                prop_assert_eq!(std::fs::read(&scratch.0).expect("reread"), bytes);
            }
            Err(StoreError::UnsupportedLogVersion { got, .. }) => prop_assert_ne!(got, 1),
            Err(e) => panic!("untyped refusal: {e}"),
        }
    }

    /// Arbitrary short op sequences over a handful of ids and kinds:
    /// materialization is total — `Ok` or a typed error, never a panic —
    /// and appends always leave the log strictly scannable.
    #[test]
    fn arbitrary_op_sequences_materialize_totally(
        // Each element encodes (op, id, kind): op = x % 2, id = (x / 2) % 3,
        // kind = (x / 6) % 3 — the shim has no tuple strategies.
        ops in proptest::collection::vec(0u64..18, 0..12),
    ) {
        let scratch = Scratch::new("seq");
        let mut log = SketchLog::create(&scratch.0).expect("create");
        for (i, &x) in ops.iter().enumerate() {
            let frame = match (x / 6) % 3 {
                0 => rdb_frame(&[vec![i as u32 % 8]]),
                1 => subsample_frame(i as u64),
                _ => count_min_frame(i as u64),
            };
            let op = if x % 2 == 1 { LogOp::Merge } else { LogOp::Put };
            log.append(op, (x / 2) % 3, &frame).expect("append valid frame");
        }
        prop_assert_eq!(log.records().expect("strict scan").len(), ops.len());
        match log.materialize() {
            Ok(live) => {
                // Every live frame is a decodable snapshot of some kind.
                for frame in live.values() {
                    itemset_sketches::store::StoredSketch::decode(frame).expect("decodable");
                }
            }
            Err(StoreError::Merge { .. }) => {} // an unfoldable run, typed
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
